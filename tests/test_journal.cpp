// DeletionJournal coverage: the append/open/compact lifecycle, the
// adversarial frame corpus (every structural damage must throw the
// typed StoreError — never UB; the suite also runs under the asan
// preset), the capacity accounting (CapacityError with budget /
// journaled / requested), and replay parity — a journaled deletion must
// be answer-identical to the same edge passed explicitly in the
// FaultSpec, across every backend, both load modes, and the batch
// engine.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/journal.hpp"
#include "core/label_store.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

// Unique store path per test; the sidecar journal is removed with it.
class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_journal_" + name + "_" +
              std::to_string(::getpid()) + ".ftcs") {
    cleanup();
  }
  ~StoreFile() { cleanup(); }
  const std::string& path() const { return path_; }
  std::string journal() const { return journal_path_for(path_); }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    std::remove(journal_path_for(path_).c_str());
  }
  std::string path_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Hand-rolled frame encoder mirroring the normative layout in
// journal.hpp, so corpus tests can produce frames the public append API
// refuses to write (bad epochs, zero counts, broken chains, ...).
struct FrameSpec {
  std::uint64_t epoch;
  std::uint64_t store_digest;
  std::uint32_t fault_budget;
  std::vector<std::uint32_t> edge_ids;  // written verbatim, unsorted OK
  bool corrupt_chain = false;
  std::uint8_t padding_byte = 0;
};

std::vector<std::uint8_t> encode_journal(const std::vector<FrameSpec>& frames) {
  store::ByteWriter w;
  std::uint64_t chain = store::kFnvBasis;
  for (const FrameSpec& fr : frames) {
    const std::size_t start = w.size();
    w.u64(store::kJournalMagic);
    w.u64(fr.epoch);
    w.u64(fr.store_digest);
    w.u32(fr.fault_budget);
    w.u32(static_cast<std::uint32_t>(fr.edge_ids.size()));
    for (const std::uint32_t e : fr.edge_ids) w.u32(e);
    while (w.size() % 8 != 0) w.u8(fr.padding_byte);
    chain = store::fnv1a(w.view().subspan(start), chain);
    w.u64(fr.corrupt_chain ? chain ^ 1 : chain);
  }
  const auto view = w.view();
  return std::vector<std::uint8_t>(view.begin(), view.end());
}

// ------------------------------------------------------------ lifecycle

TEST(DeletionJournal, AppendOpenRoundTrip) {
  StoreFile file("roundtrip");
  const std::string jpath = file.journal();
  EXPECT_FALSE(DeletionJournal::exists(jpath));

  const std::vector<EdgeId> first = {7, 3, 7};  // dup canonicalized away
  EXPECT_EQ(DeletionJournal::append(jpath, 0xabcd, 4, first), 1u);
  EXPECT_TRUE(DeletionJournal::exists(jpath));
  const std::vector<EdgeId> second = {11};
  EXPECT_EQ(DeletionJournal::append(jpath, 0xabcd, 0, second), 2u);

  const auto j = DeletionJournal::open(jpath);
  EXPECT_EQ(j->epoch(), 2u);
  EXPECT_EQ(j->store_digest(), 0xabcdu);
  EXPECT_EQ(j->fault_budget(), 4u);
  EXPECT_EQ(j->occupancy(), 3u);
  EXPECT_EQ(j->remaining(), 1u);
  EXPECT_EQ(j->num_frames(), 2u);
  const std::vector<EdgeId> expect = {3, 7, 11};
  EXPECT_EQ(std::vector<EdgeId>(j->deleted_edges().begin(),
                                j->deleted_edges().end()),
            expect);
}

TEST(DeletionJournal, ReappendOfJournaledIdsIsIdempotent) {
  StoreFile file("idempotent");
  const std::string jpath = file.journal();
  const std::vector<EdgeId> ids = {5, 9};
  DeletionJournal::append(jpath, 1, 3, ids);
  const auto before = read_file(jpath);
  // Nothing new: the epoch stays put and the file is untouched.
  EXPECT_EQ(DeletionJournal::append(jpath, 1, 0, ids), 1u);
  EXPECT_EQ(read_file(jpath), before);
}

TEST(DeletionJournal, FirstAppendRequiresBudgetAndEdges) {
  StoreFile file("firstappend");
  EXPECT_THROW(DeletionJournal::append(file.journal(), 1, 0,
                                       std::vector<EdgeId>{2}),
               std::invalid_argument);
  EXPECT_THROW(DeletionJournal::append(file.journal(), 1, 3,
                                       std::vector<EdgeId>{}),
               std::invalid_argument);
  EXPECT_FALSE(DeletionJournal::exists(file.journal()));
}

TEST(DeletionJournal, BudgetIsFixedAtCreation) {
  StoreFile file("fixedbudget");
  DeletionJournal::append(file.journal(), 1, 3, std::vector<EdgeId>{2});
  EXPECT_THROW(DeletionJournal::append(file.journal(), 1, 4,
                                       std::vector<EdgeId>{4}),
               std::invalid_argument);
  // Budget 0 means "keep the journal's".
  EXPECT_EQ(DeletionJournal::append(file.journal(), 1, 0,
                                    std::vector<EdgeId>{4}),
            2u);
}

TEST(DeletionJournal, AppendToForeignStoreDigestRefused) {
  StoreFile file("foreigndigest");
  DeletionJournal::append(file.journal(), 0x1111, 3, std::vector<EdgeId>{2});
  EXPECT_THROW(DeletionJournal::append(file.journal(), 0x2222, 0,
                                       std::vector<EdgeId>{4}),
               StoreError);
}

TEST(DeletionJournal, OverCapacityAppendThrowsTypedAndLeavesFileIntact) {
  StoreFile file("overcap");
  const std::string jpath = file.journal();
  DeletionJournal::append(jpath, 9, 3, std::vector<EdgeId>{1, 2});
  const auto before = read_file(jpath);
  try {
    DeletionJournal::append(jpath, 9, 0, std::vector<EdgeId>{5, 6});
    FAIL() << "expected CapacityError";
  } catch (const CapacityError& e) {
    EXPECT_EQ(e.budget(), 3u);
    EXPECT_EQ(e.journaled(), 2u);
    EXPECT_EQ(e.requested(), 4u);
    EXPECT_EQ(e.remaining(), 1u);
  }
  EXPECT_EQ(read_file(jpath), before);
  // A fitting append still works afterwards.
  EXPECT_EQ(DeletionJournal::append(jpath, 9, 0, std::vector<EdgeId>{5}), 2u);
}

TEST(DeletionJournal, CompactCollapsesHistoryWithoutChangingAnswers) {
  StoreFile file("compact");
  const std::string jpath = file.journal();
  DeletionJournal::append(jpath, 7, 5, std::vector<EdgeId>{9});
  DeletionJournal::append(jpath, 7, 0, std::vector<EdgeId>{1});
  DeletionJournal::append(jpath, 7, 0, std::vector<EdgeId>{4});
  const auto before = DeletionJournal::open(jpath);

  const auto stats = DeletionJournal::compact(jpath);
  EXPECT_EQ(stats.frames_before, 3u);
  EXPECT_EQ(stats.frames_after, 1u);
  EXPECT_LT(stats.file_bytes_after, stats.file_bytes_before);

  const auto after = DeletionJournal::open(jpath);
  EXPECT_EQ(after->num_frames(), 1u);
  EXPECT_EQ(after->epoch(), before->epoch());
  EXPECT_EQ(after->fault_budget(), before->fault_budget());
  EXPECT_EQ(after->store_digest(), before->store_digest());
  EXPECT_EQ(std::vector<EdgeId>(after->deleted_edges().begin(),
                                after->deleted_edges().end()),
            std::vector<EdgeId>(before->deleted_edges().begin(),
                                before->deleted_edges().end()));
  // Compacted journals keep accepting appends (the chain restarts).
  EXPECT_EQ(DeletionJournal::append(jpath, 7, 0, std::vector<EdgeId>{2}),
            after->epoch() + 1);
}

// ---------------------------------------------------- adversarial corpus

struct CorruptCase {
  const char* name;
  std::vector<FrameSpec> frames;
};

class JournalCorpus : public ::testing::TestWithParam<CorruptCase> {};

TEST_P(JournalCorpus, StructuralDamageThrowsStoreError) {
  StoreFile file(std::string("corpus_") + GetParam().name);
  write_file(file.journal(), encode_journal(GetParam().frames));
  EXPECT_THROW(DeletionJournal::open(file.journal()), StoreError)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDamage, JournalCorpus,
    ::testing::Values(
        CorruptCase{"epoch_zero", {{0, 1, 3, {2}}}},
        CorruptCase{"epoch_not_increasing",
                    {{2, 1, 3, {2}}, {2, 1, 3, {4}}}},
        CorruptCase{"digest_differs_between_frames",
                    {{1, 1, 3, {2}}, {2, 9, 3, {4}}}},
        CorruptCase{"budget_differs_between_frames",
                    {{1, 1, 3, {2}}, {2, 1, 4, {4}}}},
        CorruptCase{"zero_budget", {{1, 1, 0, {2}}}},
        CorruptCase{"empty_frame", {{1, 1, 3, {}}}},
        CorruptCase{"unsorted_ids", {{1, 1, 3, {4, 2}}}},
        CorruptCase{"duplicate_ids", {{1, 1, 3, {2, 2}}}},
        CorruptCase{"nonzero_padding", {{1, 1, 3, {2}, false, 0x5a}}},
        CorruptCase{"broken_chain", {{1, 1, 3, {2}, true}}},
        CorruptCase{"broken_chain_second_frame",
                    {{1, 1, 3, {2}}, {2, 1, 3, {4}, true}}}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(JournalCorpus, EmptyFileThrows) {
  StoreFile file("corpus_empty");
  write_file(file.journal(), std::vector<std::uint8_t>{});
  EXPECT_THROW(DeletionJournal::open(file.journal()), StoreError);
}

TEST(JournalCorpus, MissingFileThrows) {
  StoreFile file("corpus_missing");
  EXPECT_THROW(DeletionJournal::open(file.journal()), StoreError);
}

TEST(JournalCorpus, BadMagicThrows) {
  StoreFile file("corpus_magic");
  auto bytes = encode_journal({{1, 1, 3, {2}}});
  bytes[0] ^= 0xff;
  write_file(file.journal(), bytes);
  EXPECT_THROW(DeletionJournal::open(file.journal()), StoreError);
}

TEST(JournalCorpus, EveryTruncationPrefixThrows) {
  StoreFile file("corpus_truncate");
  const auto bytes = encode_journal({{1, 1, 5, {2, 5, 9}}, {2, 1, 5, {11}}});
  // A journal is valid only at frame boundaries; every strict prefix of
  // the byte stream (except the full file) must fail typed, including
  // cuts inside the prefix, the ID array, the padding and the digest.
  // 32-byte prefix + 3*4 ID bytes + 4 pad + 8-byte digest.
  const std::size_t frame_one_bytes = 56;
  for (std::size_t len = 1; len < bytes.size(); ++len) {
    if (len == frame_one_bytes) continue;  // a valid one-frame journal
    write_file(file.journal(),
               std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_THROW(DeletionJournal::open(file.journal()), StoreError)
        << "prefix length " << len;
  }
  // Sanity: the boundary prefix and the full file both open.
  write_file(file.journal(),
             std::span<const std::uint8_t>(bytes.data(), frame_one_bytes));
  EXPECT_EQ(DeletionJournal::open(file.journal())->epoch(), 1u);
  write_file(file.journal(), bytes);
  EXPECT_EQ(DeletionJournal::open(file.journal())->epoch(), 2u);
}

TEST(JournalCorpus, FlippedPayloadBitBreaksChain) {
  StoreFile file("corpus_bitflip");
  auto bytes = encode_journal({{1, 1, 3, {2, 5}}});
  bytes[32] ^= 0x01;  // first edge ID, low byte
  write_file(file.journal(), bytes);
  EXPECT_THROW(DeletionJournal::open(file.journal()), StoreError);
}

TEST(JournalCorpus, OverCapacityJournalRefusesToOpen) {
  StoreFile file("corpus_overcap");
  // Structurally pristine, semantically unservable: 4 deletions against
  // a budget of 3. open() must refuse typed, not serve wrong answers.
  write_file(file.journal(), encode_journal({{1, 1, 3, {1, 2, 5, 9}}}));
  try {
    DeletionJournal::open(file.journal());
    FAIL() << "expected CapacityError";
  } catch (const CapacityError& e) {
    EXPECT_EQ(e.budget(), 3u);
    EXPECT_EQ(e.journaled(), 4u);
    EXPECT_EQ(e.remaining(), 0u);
  }
}

// ------------------------------------------------------- store binding

TEST(JournalBinding, UnknownEdgeIdsRefusedAgainstStore) {
  const Graph g = graph::random_connected(24, 60, 3);
  SchemeConfig cfg;
  cfg.set_f(3);
  StoreFile file("unknown_ids");
  make_scheme(g, cfg)->save(file.path());
  const auto view = open_store_view(file.path());
  DeletionJournal::append(file.journal(), view->info().payload_checksum, 3,
                          std::vector<EdgeId>{g.num_edges()});
  EXPECT_THROW(load_scheme(file.path()), StoreError);
}

TEST(JournalBinding, StaleJournalFromOldGenerationRefused) {
  const Graph g = graph::random_connected(24, 60, 3);
  SchemeConfig cfg;
  cfg.set_f(3);
  StoreFile file("stale");
  make_scheme(g, cfg)->save(file.path());
  // Journal bound to a digest no store will ever have.
  DeletionJournal::append(file.journal(), 0xdeadbeef, 3,
                          std::vector<EdgeId>{1});
  EXPECT_THROW(load_scheme(file.path()), StoreError);
  // Opting out of replay serves the labels as-is.
  LoadOptions options;
  options.replay_journal = false;
  EXPECT_NE(load_scheme(file.path(), options), nullptr);
}

// -------------------------------------------------------- replay parity

class JournalReplayParity : public ::testing::TestWithParam<BackendKind> {};

TEST_P(JournalReplayParity, JournaledDeletionsMatchExplicitFaults) {
  const unsigned f = 4;
  const Graph g = graph::random_connected(40, 96, 11);
  SchemeConfig cfg;
  cfg.backend = GetParam();
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  const auto scheme = make_scheme(g, cfg);
  StoreFile file("parity_" + std::string(backend_name(GetParam())));
  scheme->save(file.path());

  const std::vector<EdgeId> journaled = {4, 17};
  const auto view = open_store_view(file.path());
  DeletionJournal::append(file.journal(), view->info().payload_checksum, f,
                          journaled);

  SplitMix64 rng(23);
  for (const LoadMode mode : {LoadMode::kMmap, LoadMode::kMaterialize}) {
    const auto replayed = load_scheme(file.path(), {mode, true});
    ASSERT_NE(replayed->journal(), nullptr);
    for (int round = 0; round < 24; ++round) {
      // Query faults within the leftover budget, overlapping journaled
      // IDs on purpose (the union, not the sum, is what must fit).
      std::vector<EdgeId> query_faults;
      for (unsigned i = 0; i < rng.next_below(3); ++i) {
        query_faults.push_back(
            static_cast<EdgeId>(rng.next_below(g.num_edges())));
      }
      if (round % 3 == 0) query_faults.push_back(journaled[0]);
      std::vector<EdgeId> merged = journaled;
      merged.insert(merged.end(), query_faults.begin(), query_faults.end());
      const VertexId s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const VertexId t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      EXPECT_EQ(replayed->connected(s, t, FaultSpec::edges(query_faults)),
                scheme->connected(s, t, FaultSpec::edges(merged)))
          << backend_name(GetParam()) << " s=" << s << " t=" << t;
    }
    // Past the leftover budget the scheme must refuse typed: 2 journaled
    // + 3 distinct query faults > f = 4.
    const std::vector<EdgeId> over = {1, 2, 3};
    try {
      replayed->connected(0, 1, FaultSpec::edges(over));
      FAIL() << "expected CapacityError";
    } catch (const CapacityError& e) {
      EXPECT_EQ(e.budget(), f);
      EXPECT_EQ(e.journaled(), journaled.size());
      EXPECT_EQ(e.requested(), 5u);
      EXPECT_EQ(e.remaining(), f - journaled.size());
    }
  }
}

TEST_P(JournalReplayParity, BatchEngineRepliesThroughJournal) {
  const unsigned f = 4;
  const Graph g = graph::random_connected(36, 80, 5);
  SchemeConfig cfg;
  cfg.backend = GetParam();
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  const auto scheme = make_scheme(g, cfg);
  StoreFile file("batch_" + std::string(backend_name(GetParam())));
  scheme->save(file.path());

  const std::vector<EdgeId> journaled = {3, 9};
  const auto view = open_store_view(file.path());
  DeletionJournal::append(file.journal(), view->info().payload_checksum, f,
                          journaled);

  const std::vector<EdgeId> query_faults = {21, 30};
  std::vector<EdgeId> merged = journaled;
  merged.insert(merged.end(), query_faults.begin(), query_faults.end());

  SplitMix64 rng(31);
  std::vector<BatchQueryEngine::Query> batch;
  for (int i = 0; i < 200; ++i) {
    batch.push_back(
        {static_cast<VertexId>(rng.next_below(g.num_vertices())),
         static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }
  BatchQueryEngine session(load_scheme(file.path()),
                           FaultSpec::edges(query_faults));
  BatchQueryEngine explicit_session(*scheme, FaultSpec::edges(merged));
  const auto via_journal = session.run_parallel(batch, 2);
  const auto via_explicit = explicit_session.run_sequential(batch);
  EXPECT_EQ(via_journal, via_explicit) << backend_name(GetParam());

  // reset_faults goes through the same journal fold: over budget refuses.
  EXPECT_THROW(
      session.reset_faults(FaultSpec::edges(std::vector<EdgeId>{1, 2, 5})),
      CapacityError);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, JournalReplayParity,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           std::string name(backend_name(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ftc::core
