// Tests for the geometric machinery: the Lemma 3 cut-region identity, the
// NetFind epsilon-net (Lemmas 11/12), the greedy net, and the
// (S_{f,T}, k)-good hierarchies (Lemma 5 / Proposition 5).
#include <gtest/gtest.h>

#include <set>

#include "geometry/greedy_net.hpp"
#include "geometry/hierarchy.hpp"
#include "geometry/netfind.hpp"
#include "geometry/point_map.hpp"
#include "graph/connectivity.hpp"
#include "graph/euler_tour.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "util/common.hpp"

namespace ftc::geometry {
namespace {

using graph::EdgeId;
using graph::VertexId;

std::vector<Point2> random_points(SplitMix64& rng, std::size_t n,
                                  std::uint32_t range) {
  std::vector<Point2> pts;
  std::set<std::pair<std::uint32_t, std::uint32_t>> used;
  while (pts.size() < n) {
    const auto x = static_cast<std::uint32_t>(rng.next_below(range));
    const auto y = static_cast<std::uint32_t>(rng.next_below(range));
    if (!used.insert({x, y}).second) continue;
    pts.push_back(Point2{x, y, static_cast<EdgeId>(pts.size())});
  }
  return pts;
}

TEST(PointMap, Lemma3CutRegionIdentity) {
  // For random graphs, trees and vertex sets S: a non-tree edge crosses S
  // iff its point lies in the symmetric difference of the cut halfspaces.
  SplitMix64 rng(51);
  for (int it = 0; it < 30; ++it) {
    const graph::Graph g = graph::random_connected(30, 75, 900 + it);
    const auto t = graph::bfs_spanning_tree(g, 0);
    const auto et = graph::euler_tour(t);
    const auto pts = map_nontree_edges(g, t, et);
    ASSERT_EQ(pts.size(), g.num_edges() - (g.num_vertices() - 1));

    std::vector<char> in_set(g.num_vertices(), 0);
    in_set[t.root] = 1;  // Lemma 9 convention: S contains the root
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (v != t.root && rng.next_bool()) in_set[v] = 1;
    }
    const auto cuts = directed_cut_positions(t, et, in_set);
    for (const Point2& p : pts) {
      const auto& e = g.edge(p.edge);
      const bool crossing = in_set[e.u] != in_set[e.v];
      EXPECT_EQ(in_cut_region(p, cuts), crossing)
          << "edge (" << e.u << "," << e.v << ")";
    }
  }
}

TEST(PointMap, Lemma3HoldsForComplementToo) {
  // The identity must be invariant under complementing S (cuts are).
  SplitMix64 rng(52);
  const graph::Graph g = graph::random_connected(25, 60, 77);
  const auto t = graph::bfs_spanning_tree(g, 0);
  const auto et = graph::euler_tour(t);
  const auto pts = map_nontree_edges(g, t, et);
  std::vector<char> in_set(g.num_vertices(), 0);
  in_set[t.root] = 1;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v != t.root && rng.next_bool()) in_set[v] = 1;
  }
  std::vector<char> complement(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) complement[v] = !in_set[v];
  // Complement does not contain the root, so use the root-containing side
  // for the region and check both masks give identical crossings.
  const auto cuts = directed_cut_positions(t, et, in_set);
  const auto cuts2 = directed_cut_positions(t, et, complement);
  EXPECT_EQ(cuts.size(), cuts2.size());
  for (const Point2& p : pts) {
    EXPECT_EQ(in_cut_region(p, cuts), in_cut_region(p, cuts2));
  }
}

TEST(NetFind, HitsAllHeavyCanonicalRects) {
  SplitMix64 rng(53);
  for (const std::size_t n : {30u, 60u}) {
    const auto pts = random_points(rng, n, 200);
    const unsigned gl = 4;  // threshold 12
    const auto net = netfind(pts, gl);
    EXPECT_TRUE(net_hits_all_heavy_rects(pts, net, netfind_threshold(gl)));
    // Net points are input points.
    const std::set<EdgeId> ids = [&] {
      std::set<EdgeId> s;
      for (const auto& p : pts) s.insert(p.edge);
      return s;
    }();
    for (const auto& p : net) EXPECT_TRUE(ids.count(p.edge));
  }
}

TEST(NetFind, HitsRandomHeavyRects) {
  SplitMix64 rng(54);
  const auto pts = random_points(rng, 600, 5000);
  const unsigned gl = provable_group_len(pts.size());
  const auto net = netfind(pts, gl);
  const unsigned thr = netfind_threshold(gl);
  int heavy_seen = 0;
  while (heavy_seen < 50) {
    std::uint32_t x1 = static_cast<std::uint32_t>(rng.next_below(5000));
    std::uint32_t x2 = static_cast<std::uint32_t>(rng.next_below(5000));
    std::uint32_t y1 = static_cast<std::uint32_t>(rng.next_below(5000));
    std::uint32_t y2 = static_cast<std::uint32_t>(rng.next_below(5000));
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
    if (points_in_rect(pts, x1, x2, y1, y2) < thr) continue;
    ++heavy_seen;
    EXPECT_GT(points_in_rect(net, x1, x2, y1, y2), 0u);
  }
}

TEST(NetFind, SizeBoundLemma12) {
  SplitMix64 rng(55);
  for (const std::size_t n : {128u, 512u, 2048u}) {
    const auto pts = random_points(rng, n, 100000);
    const unsigned gl = provable_group_len(n);
    const auto net = netfind(pts, gl);
    // |net| <= 2 |P| ceil(log2 |P|) / group_len = |P|/2 at the provable
    // group length.
    EXPECT_LE(net.size(), n / 2) << "n=" << n;
  }
}

TEST(NetFind, DeterministicAndOrderInvariant) {
  SplitMix64 rng(56);
  auto pts = random_points(rng, 200, 1000);
  const auto net1 = netfind(pts, 8);
  std::reverse(pts.begin(), pts.end());
  const auto net2 = netfind(pts, 8);
  EXPECT_EQ(net1.size(), net2.size());
  for (std::size_t i = 0; i < net1.size(); ++i) {
    EXPECT_EQ(net1[i], net2[i]);
  }
}

TEST(NetFind, SmallInputsYieldEmptyNet) {
  SplitMix64 rng(57);
  const auto pts = random_points(rng, 10, 50);
  // Threshold 3*8 = 24 > 10 points: nothing can be heavy.
  EXPECT_TRUE(netfind(pts, 8).empty());
  EXPECT_THROW(netfind(pts, 1), std::invalid_argument);
}

TEST(GreedyNet, HitsAllHeavyCanonicalRects) {
  SplitMix64 rng(58);
  const auto pts = random_points(rng, 50, 300);
  for (const unsigned thr : {5u, 10u, 20u}) {
    const auto net = greedy_rect_net(pts, thr);
    EXPECT_TRUE(net_hits_all_heavy_rects(pts, net, thr)) << "thr=" << thr;
    EXPECT_LT(net.size(), pts.size());
  }
}

TEST(GreedyNet, RejectsLargeInputs) {
  SplitMix64 rng(59);
  const auto pts = random_points(rng, 300, 10000);
  EXPECT_THROW(greedy_rect_net(pts, 10), std::invalid_argument);
}

TEST(Hierarchy, StructureInvariants) {
  SplitMix64 rng(60);
  const auto pts = random_points(rng, 500, 4096);
  for (const auto kind : {HierarchyKind::kDeterministicNetFind,
                          HierarchyKind::kRandomSampling}) {
    HierarchyConfig cfg;
    cfg.kind = kind;
    const EdgeHierarchy h = build_hierarchy(pts, cfg);
    ASSERT_GE(h.depth(), 2u);
    EXPECT_EQ(h.levels.front().size(), pts.size());
    EXPECT_TRUE(h.levels.back().empty());
    // Nested subsets with strictly decreasing size until empty.
    for (std::size_t i = 0; i + 1 < h.levels.size(); ++i) {
      const std::set<EdgeId> sup(h.levels[i].begin(), h.levels[i].end());
      EXPECT_LT(h.levels[i + 1].size(), std::max<std::size_t>(
                                            h.levels[i].size(), 1));
      for (const EdgeId e : h.levels[i + 1]) {
        EXPECT_TRUE(sup.count(e)) << "level " << i + 1;
      }
    }
    // Depth is logarithmic-ish: generous bound 4 log2 n + 8.
    EXPECT_LE(h.depth(), 4 * ceil_log2(pts.size()) + 8);
  }
}

TEST(Hierarchy, DeterministicNetFindReproducible) {
  SplitMix64 rng(61);
  const auto pts = random_points(rng, 300, 2048);
  HierarchyConfig cfg;
  const EdgeHierarchy a = build_hierarchy(pts, cfg);
  const EdgeHierarchy b = build_hierarchy(pts, cfg);
  ASSERT_EQ(a.depth(), b.depth());
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    EXPECT_EQ(a.levels[i], b.levels[i]);
  }
}

// Empirical goodness (Definition 1): for the hierarchy over a real graph's
// non-tree edges, every sampled S in S_{f,T} whose boundary is nonempty
// has some level with 0 < |boundary at level| <= k.
TEST(Hierarchy, GoodnessOnSampledFragmentSets) {
  SplitMix64 rng(62);
  const unsigned f = 3;
  const graph::Graph g = graph::random_connected(60, 200, 1234);
  const auto t = graph::bfs_spanning_tree(g, 0);
  const auto et = graph::euler_tour(t);
  const auto pts = map_nontree_edges(g, t, et);

  HierarchyConfig cfg;  // provable NetFind settings
  const EdgeHierarchy h = build_hierarchy(pts, cfg);
  const unsigned k = provable_hierarchy_k(
      f, provable_group_len(pts.size()));

  for (int it = 0; it < 200; ++it) {
    // Random S in S_{f,T}: vertex sets cutting at most f tree edges.
    // Build one by removing up to f random tree edges and taking a random
    // union of the resulting fragments.
    std::vector<EdgeId> tree_edges;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (t.is_tree_edge[e]) tree_edges.push_back(e);
    }
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < f; ++i) {
      faults.push_back(tree_edges[rng.next_below(tree_edges.size())]);
    }
    const auto comp = graph::components_avoiding(g, faults);
    // Keep only tree edges in the BFS: recompute components of tree only.
    // (components_avoiding uses all edges; rebuild on the tree.)
    graph::Graph tree_only(g.num_vertices());
    std::vector<EdgeId> tree_fault_ids;
    for (const EdgeId e : tree_edges) {
      const auto id = tree_only.add_edge(g.edge(e).u, g.edge(e).v);
      for (const EdgeId fe : faults) {
        if (fe == e) tree_fault_ids.push_back(id);
      }
    }
    const auto tcomp = graph::components_avoiding(tree_only, tree_fault_ids);
    const int num_frag =
        1 + static_cast<int>(*std::max_element(tcomp.begin(), tcomp.end()));
    std::vector<char> frag_in(num_frag, 0);
    for (int c = 0; c < num_frag; ++c) frag_in[c] = rng.next_bool();
    std::vector<char> in_set(g.num_vertices(), 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      in_set[v] = frag_in[tcomp[v]];
    }
    (void)comp;

    // Boundary per level; check the goodness condition.
    bool prev_nonempty = true;
    bool found_window = false;
    std::size_t bottom_boundary = 0;
    for (std::size_t lev = 0; lev < h.levels.size(); ++lev) {
      const auto bd = graph::boundary_edges(g, in_set, h.levels[lev]);
      if (lev == 0) bottom_boundary = bd.size();
      if (!bd.empty() && bd.size() <= k) found_window = true;
      if (bd.empty()) {
        prev_nonempty = false;
      } else {
        // Monotonicity: boundaries only shrink up the hierarchy.
        EXPECT_TRUE(prev_nonempty);
      }
    }
    if (bottom_boundary > 0) {
      EXPECT_TRUE(found_window) << "goodness violated";
    }
  }
}

TEST(HierarchyConstants, MatchPaperFormulas) {
  // Lemma 5: k = 3 * group_len * ceil((2f+1)^2 / 2); with the provable
  // group_len = 4 log N this is the paper's 6 (2f+1)^2 log N.
  EXPECT_EQ(provable_group_len(1024), 40u);
  // f=1: threshold 120, rectangles ceil(9/2) = 5 -> k = 600.
  EXPECT_EQ(provable_hierarchy_k(1, 40), 600u);
  EXPECT_EQ(randomized_hierarchy_k(2, 1024), 5u * 2 * 10);
}

}  // namespace
}  // namespace ftc::geometry
