// Tests for the auxiliary graph transformation (Section 3.2 / Figure 1 /
// Proposition 1) and the laminar fragment locator (Proposition 3).
#include <gtest/gtest.h>

#include <set>

#include "graph/aux_graph.hpp"
#include "graph/connectivity.hpp"
#include "graph/euler_tour.hpp"
#include "graph/fragments.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::graph {
namespace {

TEST(AuxGraph, StructuralProperties) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = random_connected(40, 100, seed);
    const SpanningTree t = bfs_spanning_tree(g, 0);
    const AuxGraph a = build_aux_graph(g, t);

    const EdgeId nontree = g.num_edges() - (g.num_vertices() - 1);
    EXPECT_EQ(a.g2.num_vertices(), g.num_vertices() + nontree);
    EXPECT_EQ(a.g2.num_edges(), g.num_edges() + nontree);
    EXPECT_TRUE(is_connected(a.g2));
    EXPECT_EQ(a.t2.root, t.root);

    // sigma maps every original edge to a T'-tree edge, injectively.
    std::set<EdgeId> images;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      ASSERT_NE(a.sigma[e], kNoEdge);
      EXPECT_TRUE(a.t2.is_tree_edge[a.sigma[e]]);
      EXPECT_TRUE(images.insert(a.sigma[e]).second);
    }
    // Every subdivision vertex has degree exactly 2.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (a.sub_vertex[e] == kNoVertex) continue;
      EXPECT_EQ(a.g2.degree(a.sub_vertex[e]), 2u);
      // Non-tree half is not a T' tree edge and maps back to e.
      EXPECT_FALSE(a.t2.is_tree_edge[a.second_half[e]]);
      EXPECT_EQ(a.orig_of[a.second_half[e]], e);
    }
    // T' has exactly |V'| - 1 tree edges.
    unsigned tree_edges = 0;
    for (EdgeId e = 0; e < a.g2.num_edges(); ++e) {
      tree_edges += a.t2.is_tree_edge[e];
    }
    EXPECT_EQ(tree_edges, a.g2.num_vertices() - 1);
  }
}

TEST(AuxGraph, ConnectivityEquivalence) {
  // Proposition 1: s-t connectivity in G - F equals connectivity in
  // G' - sigma(F), for arbitrary fault sets.
  SplitMix64 rng(7);
  for (int it = 0; it < 25; ++it) {
    const Graph g = random_connected(25, 60, 500 + it);
    const SpanningTree t = bfs_spanning_tree(g, 0);
    const AuxGraph a = build_aux_graph(g, t);
    std::vector<EdgeId> faults, mapped;
    const unsigned nf = 1 + rng.next_below(6);
    for (unsigned i = 0; i < nf; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
      faults.push_back(e);
      mapped.push_back(a.sigma[e]);
    }
    for (int q = 0; q < 20; ++q) {
      const VertexId s = static_cast<VertexId>(rng.next_below(25));
      const VertexId u = static_cast<VertexId>(rng.next_below(25));
      EXPECT_EQ(connected_avoiding(g, s, u, faults),
                connected_avoiding(a.g2, s, u, mapped));
    }
  }
}

TEST(AuxGraph, PaperFigure1Instance) {
  // The 12-edge example of Figure 1: tree edges e1..e4, e6..e8, e10, e11
  // and non-tree edges e5, e9, e12 (up to our index naming: we build a
  // tree of 10 vertices plus 5 extra edges and check the transformation
  // counts match the figure: 5 subdivision vertices, 5 new edges).
  Graph g(10);
  // A fixed tree.
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  g.add_edge(2, 5);
  g.add_edge(2, 6);
  g.add_edge(4, 7);
  g.add_edge(5, 8);
  g.add_edge(6, 9);
  // Five non-tree chords, as in the figure's e'-edges.
  g.add_edge(3, 4);
  g.add_edge(7, 8);
  g.add_edge(8, 9);
  g.add_edge(3, 7);
  g.add_edge(5, 9);
  const SpanningTree t = bfs_spanning_tree(g, 0);
  const AuxGraph a = build_aux_graph(g, t);
  EXPECT_EQ(a.g2.num_vertices(), 15u);
  EXPECT_EQ(a.g2.num_edges(), 19u);
  unsigned subdivided = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    subdivided += (a.sub_vertex[e] != kNoVertex);
  }
  EXPECT_EQ(subdivided, 5u);
}

TEST(FragmentLocator, MatchesComponentsOfTreeMinusFaults) {
  SplitMix64 rng(9);
  for (int it = 0; it < 30; ++it) {
    const Graph g = random_connected(40, 39 + rng.next_below(50), 700 + it);
    const SpanningTree t = bfs_spanning_tree(g, 0);
    const EulerTour et = euler_tour(t);

    // Pick random tree edges as faults (with possible duplicates).
    std::vector<EdgeId> tree_edges;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (t.is_tree_edge[e]) tree_edges.push_back(e);
    }
    const unsigned nf = 1 + rng.next_below(8);
    std::vector<EdgeId> faults;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
    for (unsigned i = 0; i < nf; ++i) {
      const EdgeId e = tree_edges[rng.next_below(tree_edges.size())];
      faults.push_back(e);
      const VertexId lo = t.lower_endpoint(g, e);
      intervals.push_back({et.tin[lo], et.tout[lo]});
    }
    const FragmentLocator loc(intervals);

    // Ground truth: components of the tree with fault edges removed.
    Graph tree_only(g.num_vertices());
    std::vector<EdgeId> tree_fault_ids;
    std::set<EdgeId> fault_set(faults.begin(), faults.end());
    std::vector<EdgeId> remap(g.num_edges(), kNoEdge);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!t.is_tree_edge[e]) continue;
      remap[e] = tree_only.add_edge(g.edge(e).u, g.edge(e).v);
    }
    for (const EdgeId e : fault_set) tree_fault_ids.push_back(remap[e]);
    const auto comp = components_avoiding(tree_only, tree_fault_ids);

    // locate() must induce exactly the same partition.
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
        EXPECT_EQ(loc.locate(et.tin[u]) == loc.locate(et.tin[v]),
                  comp[u] == comp[v])
            << "vertices " << u << "," << v;
      }
    }
    // Fragment count: number of distinct fault edges + 1.
    EXPECT_EQ(loc.fragment_count(), static_cast<int>(fault_set.size()) + 1);
    // Root fragment contains the root.
    EXPECT_EQ(loc.locate(et.tin[t.root]), 0);
  }
}

TEST(FragmentLocator, ParentFragmentCrossesFaultEdgeUpward) {
  // Path 0-1-2-3-4 rooted at 0; faults at edges (1,2) and (3,4):
  // fragments {0,1}, {2,3}, {4}.
  Graph g(5);
  std::vector<EdgeId> edges;
  for (VertexId i = 0; i + 1 < 5; ++i) edges.push_back(g.add_edge(i, i + 1));
  const SpanningTree t = bfs_spanning_tree(g, 0);
  const EulerTour et = euler_tour(t);
  const auto iv = [&](VertexId lower) {
    return std::make_pair(et.tin[lower], et.tout[lower]);
  };
  const FragmentLocator loc({iv(2), iv(4)});
  EXPECT_EQ(loc.fragment_count(), 3);
  const int f0 = loc.locate(et.tin[0]);
  const int f2 = loc.locate(et.tin[2]);
  const int f4 = loc.locate(et.tin[4]);
  EXPECT_EQ(f0, 0);
  EXPECT_EQ(loc.locate(et.tin[1]), f0);
  EXPECT_EQ(loc.locate(et.tin[3]), f2);
  EXPECT_NE(f2, f0);
  EXPECT_NE(f4, f2);
  EXPECT_EQ(loc.parent_fragment(f2), f0);
  EXPECT_EQ(loc.parent_fragment(f4), f2);
  EXPECT_EQ(loc.parent_fragment(0), -1);
}

TEST(FragmentLocator, RejectsNonLaminar) {
  EXPECT_THROW(FragmentLocator({{0, 5}, {3, 8}}), std::invalid_argument);
  EXPECT_THROW(FragmentLocator({{2, 1}}), std::invalid_argument);
}

TEST(FragmentLocator, DuplicateFaultsShareFragment) {
  const FragmentLocator loc({{2, 5}, {2, 5}, {7, 9}});
  EXPECT_EQ(loc.fragment_count(), 3);
  EXPECT_EQ(loc.fragment_of_fault(0), loc.fragment_of_fault(1));
  EXPECT_NE(loc.fragment_of_fault(0), loc.fragment_of_fault(2));
}

}  // namespace
}  // namespace ftc::graph
