// Cross-backend parity: all three ConnectivityScheme backends, built
// through the factory, must agree with a brute-force BFS oracle on
// random graphs, random fault sets up to f, and both QueryOptions
// ablation switches. The dp21 backends run their full-support variants
// (the factory default), so every answer is deterministic given the
// seeds baked in here — no flaky whp failures.
#include <gtest/gtest.h>

#include <vector>

#include "core/connectivity_scheme.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

SchemeConfig test_config(BackendKind backend, unsigned f) {
  SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  // Headroom so practical-k / whp parameters never run out of capacity
  // on the adversarial random workloads below.
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

class BackendParity : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendParity, MatchesBfsOracleOnRandomGraphs) {
  const unsigned f = 4;
  const auto cfg = test_config(GetParam(), f);
  for (const std::uint64_t graph_seed : {11u, 12u, 13u}) {
    const Graph g = graph::random_connected(36, 90, graph_seed);
    const auto scheme = make_scheme(g, cfg);
    EXPECT_EQ(scheme->backend(), GetParam());
    EXPECT_EQ(scheme->num_vertices(), g.num_vertices());
    EXPECT_EQ(scheme->num_edges(), g.num_edges());
    EXPECT_GT(scheme->vertex_label_bits(), 0u);
    EXPECT_GT(scheme->edge_label_bits(), 0u);
    EXPECT_GE(scheme->total_label_bits(),
              g.num_edges() * scheme->edge_label_bits());

    SplitMix64 rng(1000 + graph_seed);
    for (int it = 0; it < 60; ++it) {
      std::vector<EdgeId> faults;
      for (unsigned i = 0; i < rng.next_below(f + 1); ++i) {
        faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
      }
      const VertexId s =
          static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const VertexId t =
          static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const bool expected = graph::connected_avoiding(g, s, t, faults);
      EXPECT_EQ(scheme->connected(s, t, FaultSpec::edges(faults)), expected)
          << backend_name(GetParam()) << " graph_seed=" << graph_seed
          << " it=" << it;
    }
  }
}

TEST_P(BackendParity, QueryOptionAblationsAgree) {
  const unsigned f = 3;
  const Graph g = graph::random_connected(32, 72, 21);
  const auto scheme = make_scheme(g, test_config(GetParam(), f));
  SplitMix64 rng(77);
  for (int it = 0; it < 40; ++it) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < 1 + rng.next_below(f); ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const VertexId t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const bool expected = graph::connected_avoiding(g, s, t, faults);
    for (const bool adaptive : {false, true}) {
      for (const bool smallest_cut : {false, true}) {
        QueryOptions options;
        options.adaptive = adaptive;
        options.smallest_cut_first = smallest_cut;
        EXPECT_EQ(scheme->connected(s, t, FaultSpec::edges(faults), options),
                  expected)
            << backend_name(GetParam()) << " adaptive=" << adaptive
            << " smallest_cut_first=" << smallest_cut << " it=" << it;
      }
    }
  }
}

TEST_P(BackendParity, PreparedFaultSetServesManyQueries) {
  const Graph g = graph::path_of_cliques(6, 5);
  const auto scheme = make_scheme(g, test_config(GetParam(), 3));
  SplitMix64 rng(5);
  std::vector<EdgeId> faults;
  for (int i = 0; i < 3; ++i) {
    faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
  }
  // Duplicates must collapse in the prepared set.
  faults.push_back(faults[0]);
  const auto fault_set = scheme->prepare_faults(FaultSpec::edges(faults));
  EXPECT_LE(fault_set->num_faults(), 3u);
  const auto workspace = scheme->make_workspace();
  for (int it = 0; it < 50; ++it) {
    const VertexId s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const VertexId t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const bool expected = graph::connected_avoiding(
        g, s, t, std::span<const EdgeId>(faults));
    EXPECT_EQ(scheme->query(s, t, *fault_set, *workspace), expected)
        << backend_name(GetParam()) << " it=" << it;
  }
}

TEST_P(BackendParity, RejectsOutOfRangeFaults) {
  const Graph g = graph::cycle(12);
  const auto scheme = make_scheme(g, test_config(GetParam(), 2));
  const std::vector<EdgeId> bad{g.num_edges()};
  EXPECT_THROW((void)scheme->prepare_faults(FaultSpec::edges(bad)),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendParity,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           std::string name = backend_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(BackendFactory, ParseBackendRoundTripsAndRejectsUnknown) {
  for (const BackendKind b : kAllBackends) {
    EXPECT_EQ(parse_backend(backend_name(b)), b);
  }
  EXPECT_EQ(parse_backend("ftc"), BackendKind::kCoreFtc);
  EXPECT_EQ(parse_backend("cycle"), BackendKind::kDp21CycleSpace);
  EXPECT_EQ(parse_backend("agm"), BackendKind::kDp21Agm);
  EXPECT_THROW(parse_backend("netfind-9000"), std::invalid_argument);
}

TEST(BackendFactory, SetFPropagatesToEveryBackendConfig) {
  SchemeConfig cfg;
  cfg.set_f(7);
  EXPECT_EQ(cfg.ftc.f, 7u);
  EXPECT_EQ(cfg.cycle.f, 7u);
  EXPECT_EQ(cfg.agm.f, 7u);
  EXPECT_EQ(cfg.f(), 7u);
}

}  // namespace
}  // namespace ftc::core
