// LabelStore round-trip and adversarial-input coverage.
//
// Round-trip: every backend's labels, written through save() and loaded
// back via the mmap view or the eager deserializer, must answer exactly
// like the in-memory scheme that wrote them (cross-checked against the
// BFS ground truth), including through BatchQueryEngine sessions spun up
// straight from the file and the store-backed oracle facade.
//
// Adversarial: truncations, bad magic, unsupported versions, flipped
// checksum/payload bytes and corrupt offset indices must throw the typed
// StoreError — never UB (the suite also runs under the asan preset).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/label_store.hpp"
#include "core/oracle.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

SchemeConfig test_config(BackendKind backend, unsigned f) {
  SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  // Headroom so practical-k / whp parameters never run out of capacity
  // on the adversarial random workloads below.
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

// Unique file path per test under gtest's temp dir; removed on teardown.
class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_store_" + name + "_" +
              std::to_string(::getpid()) + ".ftcs") {
    std::remove(path_.c_str());
  }
  ~StoreFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// After editing header fields, restore the header checksum so the edit
// (not the checksum guard) is what open() trips over.
void fix_header_checksum(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), store::kHeaderBytes);
  const std::uint64_t sum =
      store::fnv1a(std::span<const std::uint8_t>(bytes.data(), 56));
  for (int i = 0; i < 8; ++i) bytes[56 + i] = (sum >> (8 * i)) & 0xff;
}

std::vector<EdgeId> random_faults(SplitMix64& rng, const Graph& g,
                                  unsigned max_faults) {
  std::vector<EdgeId> faults;
  for (unsigned i = 0; i < rng.next_below(max_faults + 1); ++i) {
    faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
  }
  return faults;
}

class LabelStoreParity : public ::testing::TestWithParam<BackendKind> {};

TEST_P(LabelStoreParity, SaveLoadRoundTripMatchesInMemoryAndBfs) {
  const unsigned f = 3;
  struct Family {
    const char* name;
    Graph g;
  };
  const Family families[] = {
      {"random", graph::random_connected(40, 96, 7)},
      {"grid", graph::grid(6, 7)},
      {"cliques", graph::path_of_cliques(5, 5)},
  };
  for (const Family& fam : families) {
    const Graph& g = fam.g;
    const auto scheme = make_scheme(g, test_config(GetParam(), f));
    StoreFile file(std::string("parity_") + fam.name + "_" +
                   std::to_string(static_cast<int>(GetParam())));
    scheme->save(file.path());

    for (const LoadMode mode : {LoadMode::kMmap, LoadMode::kMaterialize}) {
      const auto loaded = load_scheme(file.path(), {mode, true});
      EXPECT_EQ(loaded->backend(), GetParam());
      EXPECT_EQ(loaded->num_vertices(), scheme->num_vertices());
      EXPECT_EQ(loaded->num_edges(), scheme->num_edges());
      EXPECT_EQ(loaded->vertex_label_bits(), scheme->vertex_label_bits());
      EXPECT_EQ(loaded->edge_label_bits(), scheme->edge_label_bits());

      SplitMix64 rng(900 + static_cast<int>(GetParam()));
      for (int it = 0; it < 25; ++it) {
        const auto faults = random_faults(rng, g, f);
        const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
        const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
        const bool expected = graph::connected_avoiding(g, s, t, faults);
        EXPECT_EQ(scheme->connected(s, t, FaultSpec::edges(faults)),
                  expected)
            << fam.name << " it=" << it;
        EXPECT_EQ(loaded->connected(s, t, FaultSpec::edges(faults)), expected)
            << fam.name << " mode=" << static_cast<int>(mode) << " it=" << it;
      }
    }
  }
}

TEST_P(LabelStoreParity, SaveFromLoadedViewIsByteIdentical) {
  const Graph g = graph::random_connected(24, 50, 3);
  const auto scheme = make_scheme(g, test_config(GetParam(), 2));
  StoreFile first("first_" + std::to_string(static_cast<int>(GetParam())));
  StoreFile second("second_" + std::to_string(static_cast<int>(GetParam())));
  scheme->save(first.path());
  const auto loaded = load_scheme(first.path());
  loaded->save(second.path());
  EXPECT_EQ(read_file(first.path()), read_file(second.path()));
}

// The acceptance-criterion workload: a 10k-query batch served through the
// mmap view must be bit-identical to the in-memory scheme, per backend,
// across >= 3 generator families.
TEST_P(LabelStoreParity, TenThousandQueryBatchMatchesInMemory) {
  const unsigned f = 3;
  struct Family {
    const char* name;
    Graph g;
  };
  const Family families[] = {
      {"grid", graph::grid(8, 8)},
      {"barbell", graph::barbell(10, 4)},
      {"random", graph::random_connected(64, 150, 11)},
  };
  for (const Family& fam : families) {
    const Graph& g = fam.g;
    const auto scheme = make_scheme(g, test_config(GetParam(), f));
    StoreFile file(std::string("batch_") + fam.name + "_" +
                   std::to_string(static_cast<int>(GetParam())));
    scheme->save(file.path());

    SplitMix64 rng(42);
    const auto faults = random_faults(rng, g, f);
    std::vector<BatchQueryEngine::Query> queries;
    queries.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      queries.push_back(
          {static_cast<VertexId>(rng.next_below(g.num_vertices())),
           static_cast<VertexId>(rng.next_below(g.num_vertices()))});
    }

    BatchQueryEngine in_memory(*scheme, FaultSpec::edges(faults));
    // The store session owns its loaded scheme (mmap zero-copy path) and
    // fans out across threads; answers must be bit-identical.
    BatchQueryEngine from_store(
        load_scheme(file.path(), {LoadMode::kMmap, true}),
        FaultSpec::edges(faults));
    const auto expected = in_memory.run_sequential(queries);
    const auto actual = from_store.run_parallel(queries, 4);
    EXPECT_EQ(actual, expected) << fam.name;
  }
}

// A format-v2 store carries the adjacency side-table, so the oracle
// facade over a loaded scheme serves edge, vertex and mixed faults
// exactly like the in-memory oracle that wrote it.
TEST_P(LabelStoreParity, OracleFromStoreServesVertexAndMixedFaults) {
  const Graph g = graph::barbell(8, 3);
  // Headroom for the Delta * f incident-edge reduction (Delta = 8 here).
  const auto scheme = make_scheme(g, test_config(GetParam(), 10));
  StoreFile file("oracle_" + std::to_string(static_cast<int>(GetParam())));
  scheme->save(file.path());

  const ConnectivityOracle oracle = ConnectivityOracle::from_store(file.path());
  EXPECT_EQ(oracle.scheme().backend(), GetParam());
  EXPECT_TRUE(oracle.supports_vertex_faults());
  SplitMix64 rng(5);
  for (int it = 0; it < 20; ++it) {
    const auto edge_faults = random_faults(rng, g, 2);
    std::vector<VertexId> vertex_faults;
    for (unsigned i = 0; i < rng.next_below(2); ++i) {
      vertex_faults.push_back(
          static_cast<VertexId>(rng.next_below(g.num_vertices())));
    }
    const auto spec = FaultSpec::of(edge_faults, vertex_faults);
    const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    EXPECT_EQ(oracle.connected(s, t, spec),
              graph::connected_avoiding(g, s, t, edge_faults, vertex_faults))
        << "it=" << it;
  }
}

TEST_P(LabelStoreParity, LoadedSchemeValidatesQueryArguments) {
  const Graph g = graph::cycle(10);
  const auto scheme = make_scheme(g, test_config(GetParam(), 2));
  StoreFile file("args_" + std::to_string(static_cast<int>(GetParam())));
  scheme->save(file.path());
  const auto loaded = load_scheme(file.path());
  const std::vector<EdgeId> bad{g.num_edges()};
  EXPECT_THROW((void)loaded->prepare_faults(FaultSpec::edges(bad)),
               std::invalid_argument);
  EXPECT_THROW((void)loaded->connected(g.num_vertices(), 0, FaultSpec{}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)loaded->prepare_faults(
          FaultSpec::vertices(std::vector<VertexId>{g.num_vertices()})),
      std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, LabelStoreParity,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           std::string name = backend_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ------------------------------------------------------------------
// Adversarial container inputs. All failure modes must surface as the
// typed StoreError, regardless of backend.

class LabelStoreAdversarial : public ::testing::Test {
 protected:
  // One small store per backend, written once per test.
  std::vector<std::uint8_t> make_store_bytes(BackendKind backend,
                                             StoreFile& file) {
    const Graph g = graph::random_connected(16, 30, 9);
    const auto scheme = make_scheme(g, test_config(backend, 2));
    scheme->save(file.path());
    return read_file(file.path());
  }
};

TEST_F(LabelStoreAdversarial, MissingAndNonRegularFilesThrow) {
  EXPECT_THROW((void)LabelStoreView::open("/nonexistent/no/such.ftcs"),
               StoreError);
  EXPECT_THROW((void)LabelStoreView::open(::testing::TempDir()), StoreError);
}

TEST_F(LabelStoreAdversarial, TruncatedFilesThrow) {
  for (const BackendKind backend : kAllBackends) {
    StoreFile file("trunc_" + std::to_string(static_cast<int>(backend)));
    const auto bytes = make_store_bytes(backend, file);
    ASSERT_GT(bytes.size(), store::kHeaderBytes);
    const std::size_t cuts[] = {0,
                                1,
                                16,
                                store::kHeaderBytes - 1,
                                store::kHeaderBytes,
                                store::kHeaderBytes + 3,
                                bytes.size() / 2,
                                bytes.size() - 1};
    for (const std::size_t cut : cuts) {
      write_file(file.path(),
                 std::span<const std::uint8_t>(bytes.data(), cut));
      EXPECT_THROW((void)LabelStoreView::open(file.path()), StoreError)
          << backend_name(backend) << " truncated to " << cut;
      // Skipping the payload-checksum pass must not weaken structural
      // validation: still a typed error, still no UB.
      EXPECT_THROW((void)LabelStoreView::open(file.path(), false), StoreError)
          << backend_name(backend) << " truncated to " << cut << " (no verify)";
    }
  }
}

TEST_F(LabelStoreAdversarial, BadMagicThrows) {
  StoreFile file("magic");
  auto bytes = make_store_bytes(BackendKind::kCoreFtc, file);
  bytes[0] ^= 0xff;
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path()), StoreError);
}

TEST_F(LabelStoreAdversarial, WrongFormatVersionThrows) {
  StoreFile file("version");
  auto bytes = make_store_bytes(BackendKind::kCoreFtc, file);
  bytes[8] = 99;  // format version field
  fix_header_checksum(bytes);
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path()), StoreError);
}

TEST_F(LabelStoreAdversarial, UnknownBackendKindThrows) {
  StoreFile file("backend");
  auto bytes = make_store_bytes(BackendKind::kCoreFtc, file);
  bytes[12] = 7;  // backend byte
  fix_header_checksum(bytes);
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path()), StoreError);
}

TEST_F(LabelStoreAdversarial, CorruptHeaderChecksumThrows) {
  StoreFile file("hdrsum");
  auto bytes = make_store_bytes(BackendKind::kCoreFtc, file);
  bytes[57] ^= 0x01;  // header checksum field itself
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path()), StoreError);
}

TEST_F(LabelStoreAdversarial, FlippedPayloadBytesFailChecksum) {
  for (const BackendKind backend : kAllBackends) {
    StoreFile file("payload_" + std::to_string(static_cast<int>(backend)));
    const auto bytes = make_store_bytes(backend, file);
    // Flip one byte in each region of the payload: params, vertex
    // section, edge index, edge blobs (approximately — any position past
    // the header must be caught by the checksum).
    const std::size_t positions[] = {
        store::kHeaderBytes, store::kHeaderBytes + 8,
        (store::kHeaderBytes + bytes.size()) / 2, bytes.size() - 1};
    for (const std::size_t pos : positions) {
      auto corrupt = bytes;
      corrupt[pos] ^= 0x10;
      write_file(file.path(), corrupt);
      EXPECT_THROW((void)LabelStoreView::open(file.path()), StoreError)
          << backend_name(backend) << " flipped byte " << pos;
    }
  }
}

TEST_F(LabelStoreAdversarial, FlippedStoredChecksumThrows) {
  StoreFile file("paysum");
  auto bytes = make_store_bytes(BackendKind::kCoreFtc, file);
  bytes[40] ^= 0xff;  // stored payload checksum field
  fix_header_checksum(bytes);
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path()), StoreError);
}

TEST_F(LabelStoreAdversarial, CorruptIndexThrowsEvenWithoutChecksum) {
  for (const BackendKind backend : kAllBackends) {
    StoreFile file("index_" + std::to_string(static_cast<int>(backend)));
    const auto bytes = make_store_bytes(backend, file);
    const auto view = LabelStoreView::open(file.path());
    const StoreInfo info = view->info();
    // Recompute the index offset from the public layout contract.
    const std::size_t params_end = store::kHeaderBytes + info.params_bytes;
    const std::size_t vertex_off = (params_end + 7) & ~std::size_t{7};
    const std::size_t index_off = vertex_off + info.vertex_section_bytes;
    ASSERT_LT(index_off + 8, bytes.size());

    // Entry 1 of the index becomes garbage: monotonicity/blob-size
    // validation must reject it even with the checksum pass disabled.
    auto corrupt = bytes;
    corrupt[index_off + 8] ^= 0xff;
    write_file(file.path(), corrupt);
    EXPECT_THROW((void)LabelStoreView::open(file.path(), false), StoreError)
        << backend_name(backend);
  }
}

TEST_F(LabelStoreAdversarial, OversizedDimensionsThrow) {
  StoreFile file("dims");
  auto bytes = make_store_bytes(BackendKind::kCoreFtc, file);
  // num_vertices field (offset 16): pretend there are 2^40 vertices.
  bytes[16 + 4] = 0xff;
  fix_header_checksum(bytes);
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path()), StoreError);
}

// ------------------------------------------------------------------
// Format v2 adjacency section: adversarial corpus. Every corruption must
// surface as StoreError — with and without the payload-checksum pass.

TEST_F(LabelStoreAdversarial, AdjacencyFlagWithoutSectionThrows) {
  StoreFile file("adjflag");
  auto bytes = make_store_bytes(BackendKind::kCoreFtc, file);
  // Clear the adjacency size (offset 48) but keep the flag (offset 13).
  for (int i = 0; i < 8; ++i) bytes[48 + i] = 0;
  fix_header_checksum(bytes);
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path(), false), StoreError);
}

TEST_F(LabelStoreAdversarial, UnknownHeaderFlagThrows) {
  StoreFile file("badflag");
  auto bytes = make_store_bytes(BackendKind::kCoreFtc, file);
  bytes[13] |= 0x80;  // undefined flag bit
  fix_header_checksum(bytes);
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path(), false), StoreError);
}

TEST_F(LabelStoreAdversarial, AdjacencySizeMismatchThrows) {
  StoreFile file("adjsize");
  auto bytes = make_store_bytes(BackendKind::kCoreFtc, file);
  bytes[48] ^= 0x08;  // adjacency size no longer matches 8(n+1) + 8m
  fix_header_checksum(bytes);
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path(), false), StoreError);
}

TEST_F(LabelStoreAdversarial, TruncatedAdjacencySectionThrows) {
  for (const BackendKind backend : kAllBackends) {
    StoreFile file("adjtrunc_" + std::to_string(static_cast<int>(backend)));
    const auto bytes = make_store_bytes(backend, file);
    const auto view = LabelStoreView::open(file.path());
    ASSERT_TRUE(view->info().has_adjacency);
    const std::size_t adj_bytes = view->info().adjacency_bytes;
    // Cut inside the adjacency section (offsets and lists regions).
    for (const std::size_t keep :
         {bytes.size() - adj_bytes + 8, bytes.size() - adj_bytes / 2,
          bytes.size() - 1}) {
      write_file(file.path(),
                 std::span<const std::uint8_t>(bytes.data(), keep));
      EXPECT_THROW((void)LabelStoreView::open(file.path(), false), StoreError)
          << backend_name(backend) << " truncated to " << keep;
    }
  }
}

TEST_F(LabelStoreAdversarial, NonMonotoneAdjacencyOffsetsThrow) {
  StoreFile file("adjmono");
  auto bytes = make_store_bytes(BackendKind::kDp21CycleSpace, file);
  const auto view = LabelStoreView::open(file.path());
  const std::size_t adj_off = bytes.size() - view->info().adjacency_bytes;
  // Offset entry 1 becomes garbage (way beyond 2m).
  bytes[adj_off + 8 + 6] = 0xff;
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path(), false), StoreError);
}

TEST_F(LabelStoreAdversarial, AdjacencyEdgeIdOutOfRangeThrows) {
  StoreFile file("adjid");
  auto bytes = make_store_bytes(BackendKind::kDp21CycleSpace, file);
  const auto view = LabelStoreView::open(file.path());
  const StoreInfo info = view->info();
  const std::size_t adj_off = bytes.size() - info.adjacency_bytes;
  const std::size_t lists_off =
      adj_off + 8 * (static_cast<std::size_t>(info.num_vertices) + 1);
  for (int i = 0; i < 4; ++i) bytes[lists_off + i] = 0xff;  // id = 2^32 - 1
  write_file(file.path(), bytes);
  EXPECT_THROW((void)LabelStoreView::open(file.path(), false), StoreError);
}

// ------------------------------------------------------------------
// Backward compatibility: checked-in format-v1 fixtures (written by the
// PR-2/PR-3 era writer) must still load, serve edge-fault queries
// identically to a freshly built scheme, and raise the typed capability
// error on vertex faults (v1 carries no adjacency).

struct V1Fixture {
  const char* file;
  BackendKind backend;
};

class LabelStoreV1Compat : public ::testing::TestWithParam<V1Fixture> {
 protected:
  // The exact graph + config the fixtures were generated with (see
  // tests/data/: barbell(4, 3), f = 2, seed 7, k_override 12 /
  // bits_override 64).
  static Graph fixture_graph() { return graph::barbell(4, 3); }
  static SchemeConfig fixture_config(BackendKind backend) {
    SchemeConfig cfg;
    cfg.backend = backend;
    cfg.set_f(2).set_seed(7);
    cfg.ftc.k_override = 12;
    cfg.cycle.bits_override = 64;
    return cfg;
  }
  static std::string fixture_path(const char* file) {
    return std::string(FTC_TEST_DATA_DIR) + "/" + file;
  }
};

TEST_P(LabelStoreV1Compat, LoadsAndServesEdgeFaultsUnchanged) {
  const std::string path = fixture_path(GetParam().file);
  const auto view = LabelStoreView::open(path);
  EXPECT_EQ(view->info().format_version, 1u);
  EXPECT_EQ(view->info().backend, GetParam().backend);
  EXPECT_FALSE(view->info().has_adjacency);
  EXPECT_EQ(view->info().adjacency_bytes, 0u);

  const Graph g = fixture_graph();
  const auto rebuilt = make_scheme(g, fixture_config(GetParam().backend));
  for (const LoadMode mode : {LoadMode::kMmap, LoadMode::kMaterialize}) {
    const auto loaded = load_scheme(path, {mode, true});
    EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
    EXPECT_EQ(loaded->num_edges(), g.num_edges());
    EXPECT_EQ(loaded->adjacency(), nullptr);
    SplitMix64 rng(77);
    for (int it = 0; it < 40; ++it) {
      const auto faults = random_faults(rng, g, 2);
      const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const bool expected = graph::connected_avoiding(g, s, t, faults);
      EXPECT_EQ(loaded->connected(s, t, FaultSpec::edges(faults)), expected)
          << "it=" << it;
      EXPECT_EQ(rebuilt->connected(s, t, FaultSpec::edges(faults)), expected)
          << "it=" << it;
    }
  }
}

TEST_P(LabelStoreV1Compat, VertexFaultsRaiseTypedCapabilityError) {
  const std::string path = fixture_path(GetParam().file);
  const auto loaded = load_scheme(path);
  const std::vector<VertexId> vf{1};
  EXPECT_THROW((void)loaded->prepare_faults(FaultSpec::vertices(vf)),
               CapabilityError);
  EXPECT_THROW((void)loaded->connected(0, 2, FaultSpec::vertices(vf)),
               CapabilityError);
  const ConnectivityOracle oracle = ConnectivityOracle::from_store(path);
  EXPECT_FALSE(oracle.supports_vertex_faults());
  EXPECT_THROW((void)oracle.connected(0, 2, FaultSpec::vertices(vf)),
               CapabilityError);
  // Edge-only specs keep working through the same session API.
  BatchQueryEngine session(load_scheme(path),
                           FaultSpec::edges(std::vector<EdgeId>{0, 3}));
  EXPECT_THROW(session.reset_faults(FaultSpec::vertices(vf)),
               CapabilityError);
}

// A v1 container re-saved through the new writer becomes a valid v2
// container (core params gain an empty bounds trailer, still no
// adjacency) and keeps serving identical answers.
TEST_P(LabelStoreV1Compat, ResaveUpgradesToV2WithoutAdjacency) {
  const std::string path = fixture_path(GetParam().file);
  const auto loaded = load_scheme(path);
  StoreFile upgraded("v1_upgrade_" +
                     std::to_string(static_cast<int>(GetParam().backend)));
  loaded->save(upgraded.path());
  const auto view = LabelStoreView::open(upgraded.path());
  EXPECT_EQ(view->info().format_version, store::kFormatVersion);
  EXPECT_FALSE(view->info().has_adjacency);
  const auto reloaded = load_scheme(upgraded.path());
  const Graph g = fixture_graph();
  SplitMix64 rng(78);
  for (int it = 0; it < 25; ++it) {
    const auto faults = random_faults(rng, g, 2);
    const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    EXPECT_EQ(reloaded->connected(s, t, FaultSpec::edges(faults)),
              graph::connected_avoiding(g, s, t, faults))
        << "it=" << it;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, LabelStoreV1Compat,
    ::testing::Values(V1Fixture{"v1_core_ftc.ftcs", BackendKind::kCoreFtc},
                      V1Fixture{"v1_dp21_cycle.ftcs",
                                BackendKind::kDp21CycleSpace}),
    [](const auto& info) {
      return std::string(info.param.backend == BackendKind::kCoreFtc
                             ? "core_ftc"
                             : "dp21_cycle");
    });

}  // namespace
}  // namespace ftc::core
