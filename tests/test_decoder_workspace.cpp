// Regression traps for the copy-on-write DecoderWorkspace
// (core/ftc_query.cpp): one workspace serving interleaved queries across
// multiple PreparedFaults objects — different fault sets, different
// schemes, and both field widths — must answer exactly like a fresh
// workspace (and like BFS ground truth). If the epoch/copy-on-write
// logic ever reads a stale or foreign materialized row, these
// interleavings catch it.
//
// Also pins the "same decode decisions, just cheaper" contract:
// QueryStats (fragments / outdetect_calls / merges / levels_scanned) on a
// seeded corpus must be identical between a long-lived reused workspace
// and a throwaway fresh one, for every QueryOptions combination.
#include <gtest/gtest.h>

#include <vector>

#include "core/ftc_query.hpp"
#include "core/ftc_scheme.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

struct Session {
  Graph g;
  FtcScheme scheme;
  std::vector<EdgeId> fault_ids;
  PreparedFaults prepared;

  Session(Graph graph, const FtcConfig& cfg, std::vector<EdgeId> faults)
      : g(std::move(graph)),
        scheme(FtcScheme::build(g, cfg)),
        fault_ids(std::move(faults)),
        prepared(PreparedFaults::prepare(labels())) {}

  std::vector<EdgeLabel> labels() const {
    std::vector<EdgeLabel> out;
    out.reserve(fault_ids.size());
    for (const EdgeId e : fault_ids) out.push_back(scheme.edge_label(e));
    return out;
  }

  bool query(VertexId s, VertexId t, DecoderWorkspace& ws,
             const QueryOptions& options = {},
             QueryStats* stats = nullptr) const {
    return FtcDecoder::connected(scheme.vertex_label(s),
                                 scheme.vertex_label(t), prepared, ws,
                                 options, stats);
  }

  bool ground_truth(VertexId s, VertexId t) const {
    return graph::connected_avoiding(g, s, t, fault_ids);
  }
};

std::vector<EdgeId> random_faults(SplitMix64& rng, const Graph& g,
                                  unsigned count) {
  std::vector<EdgeId> faults;
  for (unsigned i = 0; i < count; ++i) {
    faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
  }
  return faults;
}

FtcConfig config_for(unsigned f, FieldKind field = FieldKind::kAuto) {
  FtcConfig cfg;
  cfg.f = f;
  cfg.k_scale = 2.0;
  cfg.field = field;
  return cfg;
}

// One workspace, four prepared fault sets (two schemes on different
// graphs x two fault sets each, one scheme forced to GF(2^128)),
// round-robin interleaved. Every answer must match a fresh workspace and
// the BFS ground truth.
TEST(DecoderWorkspace, InterleavesAcrossFaultSetsSchemesAndFields) {
  SplitMix64 rng(71);
  const Graph g64 = graph::random_connected(48, 120, 5);
  const Graph g128 = graph::random_connected(40, 100, 6);

  std::vector<Session> sessions;
  sessions.emplace_back(g64, config_for(5), random_faults(rng, g64, 5));
  sessions.emplace_back(g64, config_for(3), random_faults(rng, g64, 2));
  sessions.emplace_back(g128, config_for(4, FieldKind::kGF128),
                        random_faults(rng, g128, 4));
  sessions.emplace_back(g128, config_for(4, FieldKind::kGF128),
                        random_faults(rng, g128, 1));
  ASSERT_EQ(sessions[0].prepared.params().field_bits, 64u);
  ASSERT_EQ(sessions[2].prepared.params().field_bits, 128u);

  DecoderWorkspace shared;
  for (int round = 0; round < 40; ++round) {
    const Session& sess = sessions[round % sessions.size()];
    const auto s = static_cast<VertexId>(rng.next_below(sess.g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.next_below(sess.g.num_vertices()));
    const bool expected = sess.ground_truth(s, t);
    EXPECT_EQ(sess.query(s, t, shared), expected)
        << "shared workspace, round " << round << " s=" << s << " t=" << t;
    DecoderWorkspace fresh;
    EXPECT_EQ(sess.query(s, t, fresh), expected)
        << "fresh workspace, round " << round << " s=" << s << " t=" << t;
  }
}

// Shrinking then regrowing the fragment count through one workspace: a
// large fault set materializes many rows; a following small fault set
// must not see them, nor the large one the small one's afterwards.
TEST(DecoderWorkspace, LargeSmallLargeFaultSetCycles) {
  SplitMix64 rng(91);
  const Graph g = graph::random_connected(64, 170, 9);
  const Session big(g, config_for(12), random_faults(rng, g, 12));
  const Session small(g, config_for(12), random_faults(rng, g, 1));

  DecoderWorkspace shared;
  for (int round = 0; round < 30; ++round) {
    const Session& sess = (round % 3 == 1) ? small : big;
    const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    EXPECT_EQ(sess.query(s, t, shared), sess.ground_truth(s, t))
        << "round " << round << " s=" << s << " t=" << t;
  }
}

// Decode decisions are a function of (labels, fault set, options) only:
// workspace reuse must not change QueryStats, just the cost of producing
// them. Runs the full option matrix on a seeded corpus.
TEST(DecoderWorkspace, QueryStatsUnchangedByWorkspaceReuse) {
  SplitMix64 rng(123);
  const Graph g = graph::random_connected(56, 140, 13);
  for (const unsigned f : {1u, 3u, 6u}) {
    const Session sess(g, config_for(f), random_faults(rng, g, f));
    for (const bool adaptive : {true, false}) {
      for (const bool smallest_cut : {true, false}) {
        const QueryOptions options{adaptive, smallest_cut};
        DecoderWorkspace reused;
        for (int i = 0; i < 25; ++i) {
          const auto s =
              static_cast<VertexId>(rng.next_below(g.num_vertices()));
          const auto t =
              static_cast<VertexId>(rng.next_below(g.num_vertices()));
          QueryStats warm{};
          const bool got = sess.query(s, t, reused, options, &warm);
          DecoderWorkspace fresh;
          QueryStats cold{};
          const bool expected = sess.query(s, t, fresh, options, &cold);
          ASSERT_EQ(got, expected)
              << "f=" << f << " adaptive=" << adaptive
              << " smallest_cut=" << smallest_cut << " i=" << i;
          EXPECT_EQ(warm.fragments, cold.fragments);
          EXPECT_EQ(warm.outdetect_calls, cold.outdetect_calls);
          EXPECT_EQ(warm.merges, cold.merges);
          EXPECT_EQ(warm.levels_scanned, cold.levels_scanned);
          EXPECT_EQ(got, sess.ground_truth(s, t));
        }
      }
    }
  }
}

}  // namespace
}  // namespace ftc::core
