// Storage fault-injection coverage: the failpoint harness itself, the
// SIGBUS-safe degraded-serving path, retry + shard quarantine, the
// link() fallback on delta pushes, journal locking, and fd exhaustion.
//
// The invariant under test everywhere: environmental failure at any
// syscall boundary — or a shard mutated behind a live mapping — must
// surface as the TYPED error (StoreIoError / DegradedError, both
// StoreError), never a crash, and must never take healthy shards down
// with it.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/journal.hpp"
#include "core/label_store.hpp"
#include "core/sharded_store.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"
#include "util/failpoint.hpp"
#include "util/scoped_fd.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

class ManifestFile {
 public:
  explicit ManifestFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_fi_" + name + "_" +
              std::to_string(::getpid()) + ".ftcm") {
    cleanup();
  }
  ~ManifestFile() { cleanup(); }
  const std::string& path() const { return path_; }
  std::string shard_path(unsigned k) const {
    return path_ + ".shard" + std::to_string(k) + ".ftcs";
  }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".jrnl").c_str());
    std::remove((path_ + ".jrnl.lock").c_str());
    for (unsigned k = 0; k < 64; ++k) std::remove(shard_path(k).c_str());
  }
  std::string path_;
};

class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_fi_" + name + "_" +
              std::to_string(::getpid()) + ".ftcs") {
    cleanup();
  }
  ~StoreFile() { cleanup(); }
  const std::string& path() const { return path_; }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".jrnl").c_str());
    std::remove((path_ + ".jrnl.lock").c_str());
  }
  std::string path_;
};

SchemeConfig test_config(unsigned f) {
  SchemeConfig cfg;
  cfg.backend = BackendKind::kCoreFtc;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  return cfg;
}

// Fast retries for tests; restores the process-wide policy on exit.
class ScopedRetryPolicy {
 public:
  explicit ScopedRetryPolicy(const RetryPolicy& p)
      : saved_(default_retry_policy()) {
    default_retry_policy() = p;
  }
  ~ScopedRetryPolicy() { default_retry_policy() = saved_; }

 private:
  RetryPolicy saved_;
};

std::size_t count_open_fds() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

// ------------------------------------------------------------------
// Failpoint harness unit tests.

TEST(Failpoint, OffByDefaultAndZeroActive) {
  failpoint::clear_all();
  EXPECT_FALSE(failpoint::armed());
  EXPECT_EQ(FTC_FAILPOINT("nothing.armed"), 0);
  EXPECT_TRUE(failpoint::active().empty());
}

TEST(Failpoint, OnceFiresExactlyOnce) {
  failpoint::Scoped fp("t.once", "once:ENOSPC");
  EXPECT_TRUE(failpoint::armed());
  EXPECT_EQ(FTC_FAILPOINT("t.once"), ENOSPC);
  EXPECT_EQ(FTC_FAILPOINT("t.once"), 0);
  EXPECT_EQ(FTC_FAILPOINT("t.once"), 0);
  EXPECT_EQ(fp.hits(), 3u);
}

TEST(Failpoint, NthFiresOnExactlyTheNthHit) {
  failpoint::Scoped fp("t.nth", "nth:3:EXDEV");
  EXPECT_EQ(FTC_FAILPOINT("t.nth"), 0);
  EXPECT_EQ(FTC_FAILPOINT("t.nth"), 0);
  EXPECT_EQ(FTC_FAILPOINT("t.nth"), EXDEV);
  EXPECT_EQ(FTC_FAILPOINT("t.nth"), 0);
}

TEST(Failpoint, AlwaysAndDefaultErrno) {
  failpoint::Scoped fp("t.always", "always");
  EXPECT_EQ(FTC_FAILPOINT("t.always"), EIO);
  EXPECT_EQ(FTC_FAILPOINT("t.always"), EIO);
}

TEST(Failpoint, CountObservesWithoutFiring) {
  failpoint::Scoped fp("t.count", "count");
  for (int i = 0; i < 5; ++i) EXPECT_EQ(FTC_FAILPOINT("t.count"), 0);
  EXPECT_EQ(fp.hits(), 5u);
}

TEST(Failpoint, ProbExtremes) {
  {
    failpoint::Scoped fp("t.prob0", "prob:0.0");
    for (int i = 0; i < 32; ++i) EXPECT_EQ(FTC_FAILPOINT("t.prob0"), 0);
  }
  {
    failpoint::Scoped fp("t.prob1", "prob:1.0:EMFILE");
    for (int i = 0; i < 32; ++i) EXPECT_EQ(FTC_FAILPOINT("t.prob1"), EMFILE);
  }
}

TEST(Failpoint, DecimalErrnoAndRearmResetsHits) {
  failpoint::set("t.decimal", "always:28");  // 28 == ENOSPC on Linux
  EXPECT_EQ(FTC_FAILPOINT("t.decimal"), 28);
  failpoint::set("t.decimal", "off");
  EXPECT_EQ(FTC_FAILPOINT("t.decimal"), 0);
  EXPECT_EQ(failpoint::hit_count("t.decimal"), 1u);  // reset by re-set
  failpoint::clear("t.decimal");
  EXPECT_FALSE(failpoint::armed());
}

TEST(Failpoint, MalformedSpecsThrow) {
  EXPECT_THROW(failpoint::set("t.bad", "sometimes"), std::invalid_argument);
  EXPECT_THROW(failpoint::set("t.bad", "nth"), std::invalid_argument);
  EXPECT_THROW(failpoint::set("t.bad", "nth:0"), std::invalid_argument);
  EXPECT_THROW(failpoint::set("t.bad", "prob:1.5"), std::invalid_argument);
  EXPECT_THROW(failpoint::set("t.bad", "always:EBOGUS"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::set("t.bad", "always:EIO:extra"),
               std::invalid_argument);
  EXPECT_FALSE(failpoint::armed()) << "failed set must not arm anything";
}

TEST(Failpoint, EnvParsing) {
  ASSERT_EQ(::setenv("FTC_FAILPOINTS",
                     "env.one=once:ENOSPC;env.two=nth:2:EXDEV", 1),
            0);
  failpoint::load_env();
  ::unsetenv("FTC_FAILPOINTS");
  EXPECT_EQ(FTC_FAILPOINT("env.one"), ENOSPC);
  EXPECT_EQ(FTC_FAILPOINT("env.two"), 0);
  EXPECT_EQ(FTC_FAILPOINT("env.two"), EXDEV);
  failpoint::clear_all();

  ASSERT_EQ(::setenv("FTC_FAILPOINTS", "garbage-without-equals", 1), 0);
  EXPECT_THROW(failpoint::load_env(), std::invalid_argument);
  ::unsetenv("FTC_FAILPOINTS");
  failpoint::clear_all();
}

// ------------------------------------------------------------------
// ScopedFd satellite.

TEST(ScopedFd, ClosesOnScopeExitAndSupportsMove) {
  const std::size_t before = count_open_fds();
  {
    util::ScopedFd fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
    ASSERT_TRUE(fd.valid());
    util::ScopedFd moved(std::move(fd));
    EXPECT_FALSE(fd.valid());
    EXPECT_TRUE(moved.valid());
  }
  EXPECT_EQ(count_open_fds(), before);
}

TEST(ScopedFd, ReadFullDistinguishesEofFromError) {
  StoreFile f("readfull");
  {
    std::ofstream out(f.path(), std::ios::binary);
    out << "abc";  // 3 bytes: shorter than any 8-byte magic
  }
  util::ScopedFd fd(::open(f.path().c_str(), O_RDONLY | O_CLOEXEC));
  ASSERT_TRUE(fd.valid());
  std::uint8_t buf[8];
  errno = 77;  // stale errno must not masquerade as a read error
  EXPECT_FALSE(util::read_full(fd.get(), buf, sizeof(buf)));
  EXPECT_EQ(errno, 0) << "EOF must report errno 0";
  EXPECT_FALSE(util::read_full(-1, buf, sizeof(buf)));
  EXPECT_EQ(errno, EBADF);
}

// ------------------------------------------------------------------
// Failpoints threaded through the store syscall boundaries.

TEST(FaultInjection, MapOpenFailureIsTypedStoreIoError) {
  StoreFile store("map_open");
  const Graph g = graph::random_connected(24, 60, 7);
  make_scheme(g, test_config(2))->save(store.path());

  failpoint::Scoped fp("store.map.open", "always:EMFILE");
  try {
    (void)LabelStoreView::open(store.path());
    FAIL() << "expected StoreIoError";
  } catch (const StoreIoError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(FaultInjection, WriteBoundaryFailuresAreTypedAndLeaveNoFile) {
  const Graph g = graph::random_connected(24, 60, 7);
  const auto scheme = make_scheme(g, test_config(2));
  for (const char* site : {"store.write.open", "store.write.write",
                           "store.write.fsync", "store.write.close",
                           "store.write.rename"}) {
    StoreFile store(std::string("write_") + site);
    failpoint::Scoped fp(site, "once:ENOSPC");
    EXPECT_THROW(scheme->save(store.path()), StoreIoError) << site;
    struct stat st{};
    EXPECT_NE(::stat(store.path().c_str(), &st), 0)
        << site << ": aborted save must not leave a store file";
  }
}

TEST(FaultInjection, SniffFailuresAreTyped) {
  StoreFile store("sniff");
  const Graph g = graph::random_connected(24, 60, 7);
  make_scheme(g, test_config(2))->save(store.path());
  {
    failpoint::Scoped fp("store.sniff.open", "once:EACCES");
    EXPECT_THROW((void)open_store_view(store.path()), StoreIoError);
  }
  {
    failpoint::Scoped fp("store.sniff.read", "once:EIO");
    EXPECT_THROW((void)open_store_view(store.path()), StoreIoError);
  }
  EXPECT_NE(open_store_view(store.path()), nullptr);
}

// ------------------------------------------------------------------
// Retry + quarantine on the sharded serving path.

TEST(FaultInjection, TransientOpenFailureRetriesAndServes) {
  ScopedRetryPolicy retry({3, std::chrono::microseconds(1), 2.0});
  ManifestFile manifest("retry_ok");
  const Graph g = graph::random_connected(48, 120, 11);
  const auto scheme = make_scheme(g, test_config(2));
  save_sharded(*scheme, manifest.path(), 4);

  const auto view = ShardedStoreView::open(manifest.path());
  // First open attempt of the first touched shard fails transiently;
  // the retry must succeed without quarantining anything.
  failpoint::Scoped fp("store.map.open", "nth:1:EAGAIN");
  (void)view->vertex_blob(0);
  EXPECT_EQ(view->shards_quarantined(), 0u);
  EXPECT_EQ(view->shards_open(), 1u);
}

TEST(FaultInjection, ExhaustedRetriesQuarantineExactlyThatShard) {
  ScopedRetryPolicy retry({2, std::chrono::microseconds(1), 2.0});
  ManifestFile manifest("quarantine");
  const Graph g = graph::random_connected(64, 160, 3);
  const auto scheme = make_scheme(g, test_config(2));
  save_sharded(*scheme, manifest.path(), 4);

  const auto view = ShardedStoreView::open(manifest.path());
  const auto recs = view->shards();
  // Route a read into shard 2 while every open fails persistently.
  const VertexId damaged_v = static_cast<VertexId>(recs[2].vertex_begin);
  {
    failpoint::Scoped fp("store.map.open", "always:EIO");
    try {
      (void)view->vertex_blob(damaged_v);
      FAIL() << "expected DegradedError";
    } catch (const DegradedError& e) {
      EXPECT_EQ(e.shard, 2u);
      EXPECT_EQ(e.vertex_begin, recs[2].vertex_begin);
      EXPECT_EQ(e.vertex_end, recs[2].vertex_end);
      EXPECT_EQ(e.edge_begin, recs[2].edge_begin);
      EXPECT_EQ(e.edge_end, recs[2].edge_end);
    }
  }
  // Quarantine is sticky even after the fault clears (repair = next
  // generation), and names exactly one shard.
  EXPECT_THROW((void)view->vertex_blob(damaged_v), DegradedError);
  EXPECT_EQ(view->shards_quarantined(), 1u);
  const auto report = view->quarantine_report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].shard, 2u);
  EXPECT_FALSE(report[0].reason.empty());
  // Every other shard still serves.
  (void)view->vertex_blob(0);
  (void)view->vertex_blob(static_cast<VertexId>(recs[1].vertex_begin));
  (void)view->vertex_blob(static_cast<VertexId>(recs[3].vertex_begin));
  EXPECT_EQ(view->shards_open(), 3u);
}

TEST(FaultInjection, PrefetchKeepsOpeningPastAFailedShard) {
  ScopedRetryPolicy retry({1, std::chrono::microseconds(1), 2.0});
  ManifestFile manifest("prefetch_continue");
  const Graph g = graph::random_connected(64, 160, 5);
  const auto scheme = make_scheme(g, test_config(2));
  save_sharded(*scheme, manifest.path(), 4);

  const auto view = ShardedStoreView::open(manifest.path());
  failpoint::Scoped fp("store.map.open", "nth:1:EIO");
  // Single-threaded prefetch: shard 0's open fails and quarantines, the
  // other three must still be mapped before the error is rethrown.
  EXPECT_THROW((void)view->prefetch(1), DegradedError);
  EXPECT_EQ(view->shards_open(), 3u);
  EXPECT_EQ(view->shards_quarantined(), 1u);
  EXPECT_EQ(view->quarantine_report()[0].shard, 0u);
}

TEST(FaultInjection, FailedSwapLeavesOldGenerationServing) {
  ScopedRetryPolicy retry({1, std::chrono::microseconds(1), 2.0});
  ManifestFile gen_a("swap_a");
  ManifestFile gen_b("swap_b");
  const unsigned f = 2;
  const Graph g = graph::random_connected(48, 120, 17);
  // gen_b is built from a DIFFERENT graph so its shards are not
  // byte-identical to gen_a's — byte-identical shards would be adopted
  // across the swap and the open failpoint would never fire.
  const Graph g2 = graph::random_connected(48, 120, 18);
  save_sharded(*make_scheme(g, test_config(f)), gen_a.path(), 4);
  save_sharded(*make_scheme(g2, test_config(f)), gen_b.path(), 4);

  const std::vector<EdgeId> faults = {3, 40};
  BatchQueryEngine session(load_scheme(gen_a.path()),
                           FaultSpec::edges(faults));
  const bool before = session.connected(0, 47);
  EXPECT_EQ(before, graph::connected_avoiding(g, 0, 47, faults));
  {
    failpoint::Scoped fp("store.map.open", "always:EIO");
    EXPECT_THROW((void)session.swap_store(gen_b.path()), StoreError);
  }
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(session.connected(0, 47), before);
  EXPECT_EQ(session.generation_stats().shards_quarantined, 0u);
  // With the fault cleared the same swap succeeds and serves gen_b.
  EXPECT_EQ(session.swap_store(gen_b.path()), 2u);
  EXPECT_EQ(session.connected(0, 47),
            graph::connected_avoiding(g2, 0, 47, faults));
}

// ------------------------------------------------------------------
// SIGBUS-safe degraded serving: a shard truncated behind a live K=16
// generation must surface as DegradedError on its own ranges while
// every other range keeps answering correctly — never a crash.

TEST(FaultInjection, TruncatedShardBehindLiveGenerationDegradesTyped) {
  ManifestFile manifest("sigbus_live");
  const unsigned f = 3;
  const VertexId n = 320;
  const EdgeId m = 800;
  const Graph g = graph::random_connected(n, m, 29);
  const auto scheme = make_scheme(g, test_config(f));
  save_sharded(*scheme, manifest.path(), 16);

  const std::vector<EdgeId> faults = {10, 200, 600};
  BatchQueryEngine session(load_scheme(manifest.path()),
                           FaultSpec::edges(faults));
  const auto view = std::dynamic_pointer_cast<const ShardedStoreView>(
      session.scheme().store_view());
  ASSERT_NE(view, nullptr);
  // Map every shard up front (the ctor only opens the shards the fault
  // labels touch) so the truncation lands behind a LIVE mapping.
  view->prefetch();
  ASSERT_EQ(view->shards_open(), 16u);

  // Ground truth before the damage.
  SplitMix64 rng(99);
  std::vector<BatchQueryEngine::Query> batch;
  for (int i = 0; i < 400; ++i) {
    batch.push_back({static_cast<VertexId>(rng.next_below(n)),
                     static_cast<VertexId>(rng.next_below(n))});
  }
  std::vector<bool> truth;
  for (const auto& q : batch) {
    truth.push_back(graph::connected_avoiding(g, q.s, q.t, faults));
  }
  const auto results = session.run_sequential(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(results[i], truth[i]) << "pre-damage answers must be exact";
  }

  // Truncate shard 9 on disk, behind the live mapping.
  const std::size_t damaged = 9;
  const auto recs = view->shards();
  ASSERT_EQ(::truncate(manifest.shard_path(damaged).c_str(), 0), 0);

  const auto in_damaged = [&](VertexId v) {
    return v >= recs[damaged].vertex_begin && v < recs[damaged].vertex_end;
  };
  std::size_t degraded_queries = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& q = batch[i];
    if ((in_damaged(q.s) || in_damaged(q.t)) && q.s != q.t) {
      // s == t short-circuits without a label read, so only distinct
      // endpoints are required to surface the damage.
      try {
        (void)session.connected(q.s, q.t);
        FAIL() << "query into the truncated shard must degrade, not answer";
      } catch (const DegradedError& e) {
        EXPECT_EQ(e.shard, damaged);
        ++degraded_queries;
      }
    } else {
      EXPECT_EQ(session.connected(q.s, q.t), truth[i])
          << "healthy ranges must keep answering correctly";
    }
  }
  EXPECT_GT(degraded_queries, 0u) << "test must actually hit the dead range";

  EXPECT_EQ(view->shards_quarantined(), 1u);
  EXPECT_EQ(view->quarantine_report()[0].shard, damaged);
  const auto stats = session.generation_stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.num_shards, 16u);
  EXPECT_EQ(stats.shards_quarantined, 1u);
  ASSERT_EQ(stats.quarantine.size(), 1u);
  EXPECT_EQ(stats.quarantine[0].shard, damaged);
  EXPECT_EQ(stats.quarantine[0].vertex_begin, recs[damaged].vertex_begin);
}

TEST(FaultInjection, TruncationUnderConcurrentSessionsNeverCrashes) {
  ManifestFile manifest("sigbus_concurrent");
  const unsigned f = 2;
  const VertexId n = 256;
  const EdgeId m = 640;
  const Graph g = graph::random_connected(n, m, 31);
  const auto scheme = make_scheme(g, test_config(f));
  save_sharded(*scheme, manifest.path(), 16);

  const std::vector<EdgeId> faults = {7, 300};
  const auto view = ShardedStoreView::open(manifest.path());
  (void)view->prefetch();

  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      // One engine per thread (the engine's query contract is
      // single-driver), all sharing the one live view. Construction
      // (fault-label copies) must finish before the damage lands.
      BatchQueryEngine session(load_scheme(view), FaultSpec::edges(faults));
      ready.fetch_add(1);
      SplitMix64 rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto s = static_cast<VertexId>(rng.next_below(n));
        const auto u = static_cast<VertexId>(rng.next_below(n));
        try {
          (void)session.connected(s, u);
          answered.fetch_add(1, std::memory_order_relaxed);
        } catch (const DegradedError&) {
          degraded.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (ready.load() < 4) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(::truncate(manifest.shard_path(5).c_str(), 0), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  stop.store(true);
  for (auto& th : pool) th.join();

  EXPECT_GT(answered.load(), 0u);
  EXPECT_LE(view->shards_quarantined(), 1u);
  if (view->shards_quarantined() == 1) {
    EXPECT_EQ(view->quarantine_report()[0].shard, 5u);
  }
}

// ------------------------------------------------------------------
// fsck primitives: open_degraded + verify_shard.

TEST(FaultInjection, OpenDegradedQuarantinesDamagedShardAndServesRest) {
  ManifestFile manifest("fsck_prims");
  const Graph g = graph::random_connected(64, 160, 41);
  const auto scheme = make_scheme(g, test_config(2));
  save_sharded(*scheme, manifest.path(), 4);
  ASSERT_EQ(::truncate(manifest.shard_path(2).c_str(), 10), 0);

  // The strict open refuses outright (a damaged generation must never
  // win a swap) ...
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path()), StoreError);
  // ... while the fsck/incident entry point opens degraded.
  const auto view = ShardedStoreView::open_degraded(manifest.path());
  EXPECT_EQ(view->shards_quarantined(), 1u);
  const auto report = view->quarantine_report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].shard, 2u);

  const auto recs = view->shards();
  (void)view->vertex_blob(0);  // healthy ranges serve
  EXPECT_THROW(
      (void)view->vertex_blob(static_cast<VertexId>(recs[2].vertex_begin)),
      DegradedError);

  // verify_shard agrees with the quarantine, shard by shard.
  for (std::size_t k = 0; k < 4; ++k) {
    if (k == 2) {
      EXPECT_THROW(view->verify_shard(k), StoreError);
    } else {
      EXPECT_NO_THROW(view->verify_shard(k));
    }
  }
}

// ------------------------------------------------------------------
// Delta-push link() fallback satellite.

TEST(FaultInjection, LinkFailureFallsBackToByteCopyAndCounts) {
  ManifestFile parent("link_parent");
  ManifestFile child("link_child");
  const Graph g = graph::random_connected(48, 120, 23);
  const auto scheme = make_scheme(g, test_config(2));
  save_sharded(*scheme, parent.path(), 4);

  failpoint::Scoped fp("store.shard.link", "always:EXDEV");
  const DeltaPushStats stats =
      save_sharded_delta(*scheme, child.path(), parent.path());
  // Every shard is byte-identical to the parent, but the mount refuses
  // hard links: each one falls back to a full write, and the stats say
  // so — the push still succeeds.
  EXPECT_EQ(stats.shards_total, 4u);
  EXPECT_EQ(stats.shards_reused, 0u);
  EXPECT_EQ(stats.shards_written, 4u);
  EXPECT_EQ(stats.shards_link_fallback, 4u);
  EXPECT_GT(stats.bytes_written, 0u);

  // The fallback copies must be byte-faithful: the child opens with
  // full verification and chains to the parent.
  const auto child_view = ShardedStoreView::open(child.path());
  const auto parent_view = ShardedStoreView::open(parent.path());
  EXPECT_EQ(child_view->info().manifest_epoch, 2u);
  EXPECT_EQ(child_view->info().parent_digest,
            parent_view->info().payload_checksum);
  // And the copies are separate inodes (no hard link happened).
  struct stat a{}, b{};
  ASSERT_EQ(::stat(parent.shard_path(0).c_str(), &a), 0);
  ASSERT_EQ(::stat(child.shard_path(0).c_str(), &b), 0);
  EXPECT_NE(a.st_ino, b.st_ino);
}

TEST(FaultInjection, HealthyDeltaPushRecordsZeroFallbacks) {
  ManifestFile parent("nolink_parent");
  ManifestFile child("nolink_child");
  const Graph g = graph::random_connected(48, 120, 23);
  const auto scheme = make_scheme(g, test_config(2));
  save_sharded(*scheme, parent.path(), 4);
  const DeltaPushStats stats =
      save_sharded_delta(*scheme, child.path(), parent.path());
  EXPECT_EQ(stats.shards_reused, 4u);
  EXPECT_EQ(stats.shards_link_fallback, 0u);
}

// ------------------------------------------------------------------
// Journal locking satellite.

TEST(FaultInjection, ConcurrentJournalAppendsLoseNoFrames) {
  StoreFile store("jrnl_race");
  const Graph g = graph::random_connected(48, 200, 37);
  const auto scheme = make_scheme(g, test_config(8));
  scheme->save(store.path());
  const auto view = LabelStoreView::open(store.path());
  const std::uint64_t digest = view->info().payload_checksum;
  const std::string jpath = journal_path_for(store.path());

  // Two threads append disjoint edge sets; the flock around the
  // read-modify-write must serialize them so no append is lost.
  const auto appender = [&](EdgeId begin, EdgeId end) {
    for (EdgeId e = begin; e < end; ++e) {
      const std::vector<EdgeId> one{e};
      (void)DeletionJournal::append(jpath, digest, 8, one);
    }
  };
  std::thread a(appender, 0, 4);
  std::thread b(appender, 4, 8);
  a.join();
  b.join();

  const auto j = DeletionJournal::open(jpath);
  EXPECT_EQ(j->deleted_edges().size(), 8u);
  EXPECT_EQ(j->num_frames(), 8u);
}

TEST(FaultInjection, JournalFailpointsAreTyped) {
  StoreFile store("jrnl_fp");
  const Graph g = graph::random_connected(24, 60, 7);
  const auto scheme = make_scheme(g, test_config(4));
  scheme->save(store.path());
  const auto view = LabelStoreView::open(store.path());
  const std::uint64_t digest = view->info().payload_checksum;
  const std::string jpath = journal_path_for(store.path());
  const std::vector<EdgeId> first{1};
  const std::vector<EdgeId> second{2};
  ASSERT_EQ(DeletionJournal::append(jpath, digest, 4, first), 1u);
  {
    failpoint::Scoped fp("journal.flock", "once:EACCES");
    EXPECT_THROW((void)DeletionJournal::append(jpath, digest, 4, second),
                 StoreIoError);
  }
  {
    failpoint::Scoped fp("journal.read", "once:EIO");
    EXPECT_THROW((void)DeletionJournal::open(jpath), StoreIoError);
  }
  // The journal survived both injected failures intact.
  const auto j = DeletionJournal::open(jpath);
  EXPECT_EQ(j->deleted_edges().size(), 1u);
}

// ------------------------------------------------------------------
// fd exhaustion: a K=16 store under a shrinking RLIMIT_NOFILE must fail
// typed, never crash, and never leak a descriptor.

TEST(FaultInjection, FdExhaustionSweepIsTypedAndLeakFree) {
  ScopedRetryPolicy retry({2, std::chrono::microseconds(1), 2.0});
  ManifestFile manifest("fd_sweep");
  const Graph g = graph::random_connected(128, 320, 43);
  const auto scheme = make_scheme(g, test_config(2));
  save_sharded(*scheme, manifest.path(), 16);

  struct rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  const std::size_t baseline = count_open_fds();

  for (const std::size_t headroom : {16u, 8u, 4u, 2u, 1u, 0u}) {
    for (int iteration = 0; iteration < 3; ++iteration) {
      struct rlimit tight = saved;
      tight.rlim_cur = static_cast<rlim_t>(baseline + headroom);
      ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
      try {
        const auto view = ShardedStoreView::open(manifest.path());
        (void)view->prefetch(4);
        (void)view->vertex_blob(0);
      } catch (const StoreError&) {
        // Typed failure (open/mmap EMFILE, possibly quarantined) is the
        // acceptable outcome; anything else escapes and fails the test.
      }
      ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
      EXPECT_EQ(count_open_fds(), baseline)
          << "headroom " << headroom << " iteration " << iteration
          << " leaked a descriptor";
    }
  }
  // With the limit restored the store serves normally again.
  const auto view = ShardedStoreView::open(manifest.path());
  (void)view->prefetch();
  EXPECT_EQ(view->shards_open(), 16u);
}

}  // namespace
}  // namespace ftc::core
