// Tests for the Euler tour coordinates (Section 4.3) and the KNR ancestry
// labeling scheme (Lemma 7), including the Lemma 9 parity property that
// underpins the geometric cut representation.
#include <gtest/gtest.h>

#include <set>

#include "graph/ancestry.hpp"
#include "graph/euler_tour.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "util/common.hpp"

namespace ftc::graph {
namespace {

struct Fixture {
  Graph g;
  SpanningTree t;
  EulerTour et;

  explicit Fixture(const Graph& graph) : g(graph) {
    t = bfs_spanning_tree(g, 0);
    et = euler_tour(t);
  }
};

// Brute-force ancestor check by walking parent pointers.
bool brute_ancestor_or_self(const SpanningTree& t, VertexId a, VertexId b) {
  VertexId x = b;
  while (true) {
    if (x == a) return true;
    if (x == t.root) return false;
    x = t.parent[x];
  }
}

TEST(EulerTour, CoordinateStructure) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Fixture f(random_connected(50, 120, seed));
    const VertexId n = f.g.num_vertices();
    // Root coordinate 0; all others distinct in [1, 2n-2].
    EXPECT_EQ(f.et.coord[f.t.root], 0u);
    std::set<std::uint32_t> positions;
    for (VertexId v = 0; v < n; ++v) {
      if (v == f.t.root) continue;
      EXPECT_GE(f.et.coord[v], 1u);
      EXPECT_LE(f.et.coord[v], 2 * n - 2);
      EXPECT_GE(f.et.exit_pos[v], 1u);
      EXPECT_LE(f.et.exit_pos[v], 2 * n - 2);
      EXPECT_LT(f.et.coord[v], f.et.exit_pos[v]);  // enter before leave
      positions.insert(f.et.coord[v]);
      positions.insert(f.et.exit_pos[v]);
    }
    // All 2(n-1) directed-edge positions are distinct.
    EXPECT_EQ(positions.size(), 2 * (static_cast<std::size_t>(n) - 1));
  }
}

TEST(EulerTour, IntervalNesting) {
  Fixture f(random_connected(60, 140, 9));
  const VertexId n = f.g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (v == f.t.root) continue;
    const VertexId p = f.t.parent[v];
    // Child tour interval nests inside the parent's.
    EXPECT_GT(f.et.coord[v], f.et.coord[p]);
    EXPECT_LT(f.et.exit_pos[v], f.et.exit_pos[p]);
    // Same for pre-order intervals.
    EXPECT_GT(f.et.tin[v], f.et.tin[p]);
    EXPECT_LE(f.et.tout[v], f.et.tout[p]);
  }
}

TEST(EulerTour, PreorderIntervalsMatchBruteForceAncestry) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Fixture f(random_connected(40, 80, 100 + seed));
    const VertexId n = f.g.num_vertices();
    for (VertexId a = 0; a < n; ++a) {
      for (VertexId b = 0; b < n; ++b) {
        EXPECT_EQ(f.et.is_ancestor_or_self(a, b),
                  brute_ancestor_or_self(f.t, a, b))
            << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(EulerTour, Lemma9ParityProperty) {
  // Lemma 9: for S containing the root, the number of directed cut edges
  // of S in the tour prefix up to c(v) is even iff v is in S.
  SplitMix64 rng(17);
  for (int it = 0; it < 20; ++it) {
    Fixture f(random_connected(30, 60, 200 + it));
    const VertexId n = f.g.num_vertices();
    // Random S containing the root.
    std::vector<char> in_set(n, 0);
    in_set[f.t.root] = 1;
    for (VertexId v = 0; v < n; ++v) {
      if (v != f.t.root && rng.next_bool()) in_set[v] = 1;
    }
    // Directed cut edge positions: for every tree edge (p, v) with
    // membership differing, both coord[v] (down) and exit_pos[v] (up).
    std::vector<std::uint32_t> cut_positions;
    for (VertexId v = 0; v < n; ++v) {
      if (v == f.t.root) continue;
      if (in_set[v] != in_set[f.t.parent[v]]) {
        cut_positions.push_back(f.et.coord[v]);
        cut_positions.push_back(f.et.exit_pos[v]);
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      unsigned count = 0;
      for (const auto pos : cut_positions) {
        if (pos <= f.et.coord[v]) ++count;
      }
      EXPECT_EQ(count % 2 == 0, in_set[v] == 1) << "vertex " << v;
    }
  }
}

TEST(Ancestry, DecoderMatchesBruteForce) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Fixture f(random_connected(35, 70, 300 + seed));
    const AncestryLabeling anc(f.t, f.et);
    const VertexId n = f.g.num_vertices();
    for (VertexId a = 0; a < n; ++a) {
      for (VertexId b = 0; b < n; ++b) {
        const int rel = ancestry_relation(anc.label(a), anc.label(b));
        if (a == b) {
          EXPECT_EQ(rel, 0);
          continue;
        }
        const bool a_anc = brute_ancestor_or_self(f.t, a, b);
        const bool b_anc = brute_ancestor_or_self(f.t, b, a);
        EXPECT_EQ(rel, a_anc ? 1 : (b_anc ? -1 : 0));
        EXPECT_EQ(is_ancestor_or_self(anc.label(a), anc.label(b)), a_anc);
      }
    }
  }
}

TEST(Ancestry, LabelsAreUnique) {
  Fixture f(random_connected(64, 128, 11));
  const AncestryLabeling anc(f.t, f.et);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (VertexId v = 0; v < f.g.num_vertices(); ++v) {
    EXPECT_TRUE(
        seen.insert({anc.label(v).tin, anc.label(v).tout}).second);
  }
  EXPECT_EQ(anc.label_bits(), 2 * 6u);  // ceil(log2 64) = 6 per coordinate
}

TEST(Ancestry, PathAndStarShapes) {
  // Path: every earlier vertex is an ancestor of later ones.
  Graph path(5);
  for (VertexId i = 0; i + 1 < 5; ++i) path.add_edge(i, i + 1);
  Fixture fp(path);
  const AncestryLabeling ap(fp.t, fp.et);
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = a + 1; b < 5; ++b) {
      EXPECT_EQ(ancestry_relation(ap.label(a), ap.label(b)), 1);
    }
  }
  // Star: leaves are mutually unrelated.
  Graph star(5);
  for (VertexId i = 1; i < 5; ++i) star.add_edge(0, i);
  Fixture fs(star);
  const AncestryLabeling as(fs.t, fs.et);
  for (VertexId a = 1; a < 5; ++a) {
    for (VertexId b = a + 1; b < 5; ++b) {
      EXPECT_EQ(ancestry_relation(as.label(a), as.label(b)), 0);
    }
  }
}

}  // namespace
}  // namespace ftc::graph
