// Tests for the syndrome-decoding pipeline: Berlekamp-Massey error-locator
// synthesis and deterministic root finding (Berlekamp trace algorithm).
// Together these realize the O(k^2) decoder of Proposition 2.
#include <gtest/gtest.h>

#include <set>

#include "gf/berlekamp_massey.hpp"
#include "gf/gf2.hpp"
#include "gf/gf2_poly.hpp"
#include "gf/trace_roots.hpp"
#include "util/common.hpp"

namespace ftc::gf {
namespace {

template <typename F>
std::vector<F> random_distinct_nonzero(SplitMix64& rng, unsigned count) {
  std::set<F> s;
  while (s.size() < count) {
    F v;
    if constexpr (F::kWords == 2) {
      v = F(rng.next(), rng.next());
    } else {
      v = F(rng.next());
    }
    if (!v.is_zero()) s.insert(v);
  }
  return {s.begin(), s.end()};
}

// Power sums S_1..S_N of the set.
template <typename F>
std::vector<F> power_sums(const std::vector<F>& xs, unsigned n) {
  std::vector<F> s(n, F::zero());
  for (const F& x : xs) {
    F p = F::one();
    for (unsigned i = 0; i < n; ++i) {
      p *= x;
      s[i] += p;
    }
  }
  return s;
}

template <typename F>
class DecoderTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<GF2_16, GF2_32, GF2_64, GF2_128>;
TYPED_TEST_SUITE(DecoderTest, FieldTypes);

TYPED_TEST(DecoderTest, BerlekampMasseyRecoversLocator) {
  using F = TypeParam;
  SplitMix64 rng(21);
  for (unsigned t : {1u, 2u, 3u, 5u, 8u}) {
    for (int it = 0; it < 20; ++it) {
      const auto xs = random_distinct_nonzero<F>(rng, t);
      const auto s = power_sums(xs, 2 * t);
      const Poly<F> sigma = berlekamp_massey(std::span<const F>(s));
      ASSERT_EQ(sigma.degree(), static_cast<int>(t));
      EXPECT_EQ(sigma.coeff(0), F::one());
      // sigma(z) = prod (1 - x z) vanishes at every inverse locator.
      for (const F& x : xs) {
        EXPECT_TRUE(sigma.eval(inverse(x)).is_zero());
      }
    }
  }
}

TYPED_TEST(DecoderTest, BerlekampMasseyZeroSequence) {
  using F = TypeParam;
  const std::vector<F> s(10, F::zero());
  const Poly<F> sigma = berlekamp_massey(std::span<const F>(s));
  EXPECT_EQ(sigma.degree(), 0);
}

TYPED_TEST(DecoderTest, FindRootsSmallDegrees) {
  using F = TypeParam;
  SplitMix64 rng(22);
  for (unsigned deg = 1; deg <= 12; ++deg) {
    for (int it = 0; it < 10; ++it) {
      auto roots = random_distinct_nonzero<F>(rng, deg);
      const auto p = poly_from_roots<F>(roots);
      auto found = find_roots(p);
      std::sort(roots.begin(), roots.end());
      EXPECT_EQ(found, roots) << "degree " << deg;
    }
  }
}

TEST(FindRootsLarge, Degree40OverGF64) {
  using F = GF2_64;
  SplitMix64 rng(23);
  auto roots = random_distinct_nonzero<F>(rng, 40);
  const auto p = poly_from_roots<F>(roots);
  auto found = find_roots(p);
  std::sort(roots.begin(), roots.end());
  EXPECT_EQ(found, roots);
}

TEST(FindRootsLarge, Degree24OverGF128) {
  using F = GF2_128;
  SplitMix64 rng(24);
  auto roots = random_distinct_nonzero<F>(rng, 24);
  const auto p = poly_from_roots<F>(roots);
  auto found = find_roots(p);
  std::sort(roots.begin(), roots.end());
  EXPECT_EQ(found, roots);
}

TYPED_TEST(DecoderTest, RepeatedRootsReportedOnce) {
  using F = TypeParam;
  SplitMix64 rng(25);
  const auto xs = random_distinct_nonzero<F>(rng, 3);
  // (x+a)^2 (x+b)(x+c): distinct roots are {a, b, c}.
  std::vector<F> with_dup{xs[0], xs[0], xs[1], xs[2]};
  const auto p = poly_from_roots<F>(with_dup);
  auto found = find_roots(p);
  std::vector<F> expect(xs);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(found, expect);
}

TYPED_TEST(DecoderTest, IrreducibleQuadraticHasNoRoots) {
  using F = TypeParam;
  SplitMix64 rng(26);
  int tested = 0;
  while (tested < 20) {
    F c;
    if constexpr (F::kWords == 2) {
      c = F(rng.next(), rng.next());
    } else {
      c = F(rng.next());
    }
    // x^2 + x + c is irreducible iff Tr(c) = 1.
    if (trace(c) != F::one()) continue;
    ++tested;
    const Poly<F> p(std::vector<F>{c, F::one(), F::one()});
    EXPECT_TRUE(find_roots(p).empty());
  }
}

TYPED_TEST(DecoderTest, ConstantAndLinearPolys) {
  using F = TypeParam;
  EXPECT_TRUE(find_roots(Poly<F>::constant(F::one())).empty());
  EXPECT_TRUE(find_roots(Poly<F>::zero()).empty());
  const F r(42);
  const auto p = Poly<F>::linear(F::one(), r);  // x + r
  const auto roots = find_roots(p);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], r);
}

// End-to-end: syndromes -> BM -> roots == original support.
TYPED_TEST(DecoderTest, FullPipelineRecoversSupport) {
  using F = TypeParam;
  SplitMix64 rng(27);
  for (unsigned t : {1u, 2u, 4u, 7u}) {
    for (int it = 0; it < 10; ++it) {
      auto xs = random_distinct_nonzero<F>(rng, t);
      const auto s = power_sums(xs, 2 * t);
      const Poly<F> sigma = berlekamp_massey(std::span<const F>(s));
      auto inv_roots = find_roots(sigma);
      ASSERT_EQ(inv_roots.size(), t);
      std::vector<F> rec;
      for (const F& r : inv_roots) rec.push_back(inverse(r));
      std::sort(rec.begin(), rec.end());
      std::sort(xs.begin(), xs.end());
      EXPECT_EQ(rec, xs);
    }
  }
}

}  // namespace
}  // namespace ftc::gf
