// Tests for the graph substrate: Graph container, generators, spanning
// trees, union-find and the ground-truth connectivity oracles.
#include <gtest/gtest.h>

#include <set>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/union_find.hpp"
#include "util/common.hpp"

namespace ftc::graph {
namespace {

TEST(Graph, BasicOperations) {
  Graph g(3);
  EXPECT_EQ(g.num_vertices(), 3u);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.other_endpoint(e01, 0), 1u);
  EXPECT_EQ(g.other_endpoint(e01, 1), 0u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.incident_edges(1)[0], e01);
  EXPECT_EQ(g.incident_edges(1)[1], e12);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 7), std::invalid_argument);
  EXPECT_THROW(g.other_endpoint(e01, 2), std::invalid_argument);
  const VertexId v = g.add_vertex();
  EXPECT_EQ(v, 3u);
}

bool is_simple(const Graph& g) {
  std::set<std::pair<VertexId, VertexId>> seen;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    auto [u, v] = g.edge(e);
    if (u > v) std::swap(u, v);
    if (u == v) return false;
    if (!seen.insert({u, v}).second) return false;
  }
  return true;
}

TEST(Generators, RandomConnectedIsSimpleAndConnected) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = random_connected(60, 150, seed);
    EXPECT_EQ(g.num_vertices(), 60u);
    EXPECT_EQ(g.num_edges(), 150u);
    EXPECT_TRUE(is_simple(g));
    EXPECT_TRUE(is_connected(g));
  }
  // Tree case (m = n - 1) and near-complete case.
  EXPECT_TRUE(is_connected(random_connected(40, 39, 7)));
  EXPECT_TRUE(is_connected(random_connected(12, 66, 7)));
  EXPECT_THROW(random_connected(10, 5, 0), std::invalid_argument);
  EXPECT_THROW(random_connected(10, 46, 0), std::invalid_argument);
}

TEST(Generators, DeterministicPerSeed) {
  const Graph a = random_connected(30, 80, 123);
  const Graph b = random_connected(30, 80, 123);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(Generators, StructuredFamilies) {
  const Graph gr = grid(4, 5);
  EXPECT_EQ(gr.num_vertices(), 20u);
  EXPECT_EQ(gr.num_edges(), 4u * 4 + 5u * 3);  // 31
  EXPECT_TRUE(is_connected(gr));
  EXPECT_TRUE(is_simple(gr));

  const Graph cy = cycle(9);
  EXPECT_EQ(cy.num_edges(), 9u);
  EXPECT_TRUE(is_connected(cy));

  const Graph km = complete(7);
  EXPECT_EQ(km.num_edges(), 21u);

  const Graph hc = hypercube(4);
  EXPECT_EQ(hc.num_vertices(), 16u);
  EXPECT_EQ(hc.num_edges(), 32u);
  EXPECT_TRUE(is_connected(hc));

  const Graph bb = barbell(5, 3);
  EXPECT_EQ(bb.num_vertices(), 13u);
  EXPECT_TRUE(is_connected(bb));
  EXPECT_TRUE(is_simple(bb));

  const Graph pc = path_of_cliques(4, 5);
  EXPECT_EQ(pc.num_vertices(), 20u);
  EXPECT_TRUE(is_connected(pc));

  const Graph pa = preferential_attachment(50, 3, 5);
  EXPECT_EQ(pa.num_vertices(), 50u);
  EXPECT_TRUE(is_connected(pa));
  EXPECT_TRUE(is_simple(pa));
}

TEST(SpanningTree, BfsTreeProperties) {
  const Graph g = random_connected(80, 200, 3);
  const SpanningTree t = bfs_spanning_tree(g, 0);
  EXPECT_EQ(t.root, 0u);
  EXPECT_EQ(t.parent[0], 0u);
  EXPECT_EQ(t.depth[0], 0u);
  unsigned tree_edges = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) tree_edges += t.is_tree_edge[e];
  EXPECT_EQ(tree_edges, g.num_vertices() - 1);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    EXPECT_EQ(t.depth[v], t.depth[t.parent[v]] + 1);
    // parent edge connects v and parent[v]
    const Edge& e = g.edge(t.parent_edge[v]);
    EXPECT_TRUE((e.u == v && e.v == t.parent[v]) ||
                (e.v == v && e.u == t.parent[v]));
    EXPECT_EQ(t.lower_endpoint(g, t.parent_edge[v]), v);
  }
  // BFS tree gives shortest unweighted distances: depth is minimal over
  // parents' depths + 1 for every non-tree neighbor relation.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    EXPECT_LE(static_cast<int>(t.depth[ed.u]) -
                  static_cast<int>(t.depth[ed.v]),
              1);
    EXPECT_LE(static_cast<int>(t.depth[ed.v]) -
                  static_cast<int>(t.depth[ed.u]),
              1);
  }
}

TEST(SpanningTree, RejectsDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  EXPECT_THROW(bfs_spanning_tree(g, 0), std::invalid_argument);
}

TEST(SpanningTree, TreeFromParentsValidates) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const auto t = tree_from_parents(g, 0, {0, 0, 1}, {kNoEdge, e01, e12});
  EXPECT_EQ(t.depth[2], 2u);
  EXPECT_EQ(t.children[0].size(), 1u);
  // Cycle in parents must be rejected.
  EXPECT_THROW(tree_from_parents(g, 0, {0, 2, 1}, {kNoEdge, e01, e12}),
               std::invalid_argument);
}

TEST(Connectivity, MatchesComponentsOracle) {
  SplitMix64 rng(5);
  for (int it = 0; it < 20; ++it) {
    const Graph g = random_connected(40, 90, 1000 + it);
    std::vector<EdgeId> faults;
    for (int i = 0; i < 12; ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const auto comp = components_avoiding(g, faults);
    for (int q = 0; q < 30; ++q) {
      const VertexId s = static_cast<VertexId>(rng.next_below(40));
      const VertexId t = static_cast<VertexId>(rng.next_below(40));
      EXPECT_EQ(connected_avoiding(g, s, t, faults), comp[s] == comp[t]);
    }
  }
}

TEST(Connectivity, BoundaryEdges) {
  // Square 0-1-2-3 with a diagonal.
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const EdgeId e23 = g.add_edge(2, 3);
  const EdgeId e30 = g.add_edge(3, 0);
  const EdgeId e02 = g.add_edge(0, 2);
  const std::vector<char> in_set{1, 1, 0, 0};  // S = {0, 1}
  std::vector<EdgeId> all{e01, e12, e23, e30, e02};
  const auto bd = boundary_edges(g, in_set, all);
  EXPECT_EQ(bd, (std::vector<EdgeId>{e12, e30, e02}));
}

TEST(UnionFind, Basics) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.component_size(3), 4u);
  EXPECT_EQ(uf.component_size(5), 1u);
}

}  // namespace
}  // namespace ftc::graph
