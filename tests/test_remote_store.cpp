// RemoteStoreView + ShardHttpServer end-to-end coverage, all on
// loopback with in-process servers.
//
// The tier's contract: a sharded store served over HTTP answers
// byte-identically to the local-directory open (blobs, queries, journal
// replay), a swap to a delta-pushed child epoch transfers only the
// changed shard (cache hits + mmap adoption cover the rest), and
// transport faults follow the same retry → quarantine → DegradedError
// ladder as local I/O faults — healthy shards keep serving throughout.
#include <gtest/gtest.h>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/journal.hpp"
#include "core/label_store.hpp"
#include "core/shard_cache.hpp"
#include "core/shard_server.hpp"
#include "core/shard_source.hpp"
#include "core/sharded_store.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"
#include "util/failpoint.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

SchemeConfig test_config(unsigned f) {
  SchemeConfig cfg;
  cfg.backend = BackendKind::kCoreFtc;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  return cfg;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(::testing::TempDir() + "ftc_" + name + "_" +
              std::to_string(::getpid())) {
    remove_all();
    ::mkdir(path_.c_str(), 0755);
  }
  ~ScratchDir() { remove_all(); }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  void remove_all() {
    if (DIR* d = ::opendir(path_.c_str())) {
      while (const struct dirent* ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }
  std::string path_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

bool spans_equal(std::span<const std::uint8_t> a,
                 std::span<const std::uint8_t> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

// Swaps a fresh, budget-free cache in as the process default for the
// test's duration — load_scheme(url) and swap_store(url) reach the
// remote tier through default_remote_cache().
class ScopedDefaultCache {
 public:
  explicit ScopedDefaultCache(const std::string& dir,
                              std::uint64_t max_bytes = 0)
      : cache_(std::make_shared<ShardCache>(dir, max_bytes)),
        prior_(set_default_remote_cache(cache_)) {}
  ~ScopedDefaultCache() { set_default_remote_cache(prior_); }
  const std::shared_ptr<ShardCache>& cache() const { return cache_; }

 private:
  std::shared_ptr<ShardCache> cache_;
  std::shared_ptr<ShardCache> prior_;
};

// One sharded store on disk plus a loopback origin serving its
// directory. url() is the manifest's http:// address.
struct ServedStore {
  explicit ServedStore(const std::string& name, unsigned k_shards,
                       unsigned seed = 13, unsigned n = 48, unsigned m = 120)
      : dir(name),
        graph(graph::random_connected(n, m, seed)),
        scheme(make_scheme(graph, test_config(3))),
        server(dir.path()) {
    save_sharded(*scheme, dir.file("store.ftcm"), k_shards);
    server.start();
  }
  std::string url() const { return server.base_url() + "store.ftcm"; }
  std::string manifest() const { return dir.file("store.ftcm"); }

  ScratchDir dir;
  Graph graph;
  std::unique_ptr<ConnectivityScheme> scheme;
  ShardHttpServer server;
};

// ------------------------------------------------------------------
// HttpShardSource against the in-process origin: the raw transport.

TEST(ShardHttpServer, ServesObjectsRangesAndStats) {
  ServedStore served("httpsrv", 2);
  const HttpShardSource src("127.0.0.1", served.server.port(), "/");

  const auto disk = read_file(served.manifest());
  const auto fetched = src.fetch("store.ftcm");
  EXPECT_EQ(fetched, disk);

  const auto slice = src.fetch_range("store.ftcm", 8, 32);
  ASSERT_EQ(slice.size(), 32u);
  EXPECT_TRUE(spans_equal(
      slice, std::span<const std::uint8_t>(disk).subspan(8, 32)));

  std::uint64_t size = 0;
  ASSERT_TRUE(src.stat("store.ftcm", &size));
  EXPECT_EQ(size, disk.size());
  EXPECT_FALSE(src.stat("absent.ftcm", &size));
  EXPECT_THROW((void)src.fetch("absent.ftcm"), StoreError);
  EXPECT_THROW((void)src.fetch_range("store.ftcm", disk.size(), 1),
               StoreError);
  // Traversal attempts must 404, never escape the served directory.
  EXPECT_THROW((void)src.fetch("../store.ftcm"), StoreError);

  const auto stats = served.server.stats();
  EXPECT_GE(stats.requests, 5u);
  EXPECT_GE(stats.range_requests, 1u);
  EXPECT_GE(stats.not_found, 2u);
  EXPECT_GT(stats.bytes_sent, disk.size());
}

TEST(ShardHttpSource, ConnectFailureIsTransient) {
  // Nothing listens on the server's port once it stops: connect must
  // fail with the retryable class, not hang or crash.
  std::uint16_t dead_port;
  {
    ServedStore served("deadport", 1);
    dead_port = served.server.port();
    served.server.stop();
  }
  const HttpShardSource src("127.0.0.1", dead_port, "/");
  EXPECT_THROW((void)src.fetch("store.ftcm"), StoreIoError);
}

// ------------------------------------------------------------------
// RemoteStoreView: parity, prefetch, warm cache.

TEST(RemoteStore, BlobsAndInfoMatchLocalOpen) {
  ServedStore served("parity", 4);
  ScratchDir cache_dir("parity_cache");
  auto cache = std::make_shared<ShardCache>(cache_dir.path(), 0);

  const auto local = ShardedStoreView::open(served.manifest());
  const auto remote = RemoteStoreView::open(served.url(), true, nullptr,
                                            cache);
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->url(), served.url());
  EXPECT_EQ(remote->info().num_vertices, local->info().num_vertices);
  EXPECT_EQ(remote->info().num_edges, local->info().num_edges);
  EXPECT_EQ(remote->info().num_shards, local->info().num_shards);
  EXPECT_EQ(remote->info().manifest_epoch, local->info().manifest_epoch);
  EXPECT_EQ(remote->info().payload_checksum, local->info().payload_checksum);
  EXPECT_EQ(remote->info().file_bytes, local->info().file_bytes);

  EXPECT_TRUE(spans_equal(remote->params_blob(), local->params_blob()));
  for (VertexId v = 0; v < local->info().num_vertices; ++v) {
    ASSERT_TRUE(spans_equal(remote->vertex_blob(v), local->vertex_blob(v)))
        << "vertex " << v;
  }
  for (EdgeId e = 0; e < local->info().num_edges; ++e) {
    ASSERT_TRUE(spans_equal(remote->edge_blob(e), local->edge_blob(e)))
        << "edge " << e;
  }
  // Adjacency is carried by the manifest itself.
  std::vector<EdgeId> local_adj;
  std::vector<EdgeId> remote_adj;
  for (VertexId v = 0; v < local->info().num_vertices; ++v) {
    local_adj.clear();
    remote_adj.clear();
    local->adjacency_append(v, local_adj);
    remote->adjacency_append(v, remote_adj);
    ASSERT_EQ(remote_adj, local_adj) << "vertex " << v;
  }
}

TEST(RemoteStore, PrefetchFetchesEveryShardOnceThenServesWarm) {
  ServedStore served("prefetch", 4);
  ScratchDir cache_dir("prefetch_cache");
  auto cache = std::make_shared<ShardCache>(cache_dir.path(), 0);

  const auto remote = RemoteStoreView::open(served.url(), true, nullptr,
                                            cache);
  EXPECT_EQ(remote->shards_open(), 0u);  // shards stay lazy across the open
  const auto stats = remote->prefetch(4);
  EXPECT_EQ(stats.shards_opened, 4u);
  EXPECT_EQ(remote->shards_open(), 4u);
  EXPECT_NE(remote->routes(), nullptr);

  std::uint64_t shard_bytes = 0;
  for (const auto& rec : remote->shards()) shard_bytes += rec.file_bytes;
  auto cstats = cache->stats();
  EXPECT_EQ(cstats.misses, 4u);
  EXPECT_EQ(cstats.bytes_fetched, shard_bytes);

  // A second open over the same cache is all hits: no shard bytes move.
  const auto warm = RemoteStoreView::open(served.url(), true, nullptr, cache);
  EXPECT_EQ(warm->prefetch(4).shards_opened, 4u);
  cstats = cache->stats();
  EXPECT_EQ(cstats.misses, 4u);
  EXPECT_EQ(cstats.hits, 4u);
  EXPECT_EQ(cstats.bytes_fetched, shard_bytes);
}

TEST(RemoteStore, LoadSchemeAnswersMatchLocalThroughEngine) {
  ServedStore served("engine", 4, 29);
  ScratchDir cache_dir("engine_cache");
  const ScopedDefaultCache cache(cache_dir.path());

  const std::vector<EdgeId> faults{1, 5};
  std::vector<BatchQueryEngine::Query> queries;
  for (VertexId s = 0; s < served.graph.num_vertices(); ++s) {
    queries.push_back({s, (s * 7 + 3) % served.graph.num_vertices()});
  }
  BatchQueryEngine local_session(load_scheme(served.manifest()),
                                 FaultSpec::edges(faults));
  // load_scheme(url) rides the open_store_view dispatch — no
  // remote-specific call sites above the store layer.
  BatchQueryEngine remote_session(load_scheme(served.url()),
                                  FaultSpec::edges(faults));
  const auto expected = local_session.run_sequential(queries);
  EXPECT_EQ(remote_session.run_sequential(queries), expected);
  EXPECT_EQ(remote_session.run_parallel(queries, 4), expected);
}

// ------------------------------------------------------------------
// Delta swap: only the changed shard crosses the wire.

TEST(RemoteStore, SwapToDeltaPushedChildFetchesOnlyChangedShard) {
  ServedStore served("delta", 4, 31);
  ScratchDir cache_dir("delta_cache");
  const ScopedDefaultCache cache(cache_dir.path());

  auto scheme = load_scheme(served.url());
  const auto parent_view = std::dynamic_pointer_cast<const ShardedStoreView>(
      scheme->store_view());
  ASSERT_NE(parent_view, nullptr);
  parent_view->prefetch(4);  // all four shards cached + mapped

  const std::vector<EdgeId> faults{2};
  BatchQueryEngine session(std::move(scheme), FaultSpec::edges(faults));

  // Push a child epoch whose only change is edge 0's label — exactly
  // shard 0's bytes differ — and serve it from the same origin dir.
  class EdgeFlipScheme : public ConnectivityScheme {
   public:
    EdgeFlipScheme(const ConnectivityScheme& inner, EdgeId flip)
        : inner_(inner), flip_(flip) {}
    BackendKind backend() const override { return inner_.backend(); }
    VertexId num_vertices() const override { return inner_.num_vertices(); }
    EdgeId num_edges() const override { return inner_.num_edges(); }
    std::size_t vertex_label_bits() const override {
      return inner_.vertex_label_bits();
    }
    std::size_t edge_label_bits() const override {
      return inner_.edge_label_bits();
    }
    const AdjacencyProvider* adjacency() const override {
      return inner_.adjacency();
    }
    void serialize_params(store::ByteWriter& out) const override {
      inner_.serialize_params(out);
    }
    void serialize_vertex_label(VertexId v,
                                store::ByteWriter& out) const override {
      inner_.serialize_vertex_label(v, out);
    }
    void serialize_edge_label(EdgeId e,
                              store::ByteWriter& out) const override {
      if (e != flip_) {
        inner_.serialize_edge_label(e, out);
        return;
      }
      store::ByteWriter tmp;
      inner_.serialize_edge_label(e, tmp);
      std::vector<std::uint8_t> flipped(tmp.view().begin(), tmp.view().end());
      for (std::uint8_t& b : flipped) b ^= 0xff;
      out.bytes(flipped);
    }
    std::unique_ptr<Workspace> make_workspace() const override {
      throw std::logic_error("write-only scheme");
    }

   protected:
    std::unique_ptr<FaultSet> prepare_edge_faults(
        std::span<const EdgeId>) const override {
      throw std::logic_error("write-only scheme");
    }
    bool query_edges(VertexId, VertexId, const FaultSet&, Workspace&,
                     const QueryOptions&) const override {
      throw std::logic_error("write-only scheme");
    }

   private:
    const ConnectivityScheme& inner_;
    EdgeId flip_;
  };

  const EdgeFlipScheme patched(*served.scheme, 0);
  const DeltaPushStats push = save_sharded_delta(
      patched, served.dir.file("child.ftcm"), served.manifest());
  ASSERT_EQ(push.shards_written, 1u);
  ASSERT_EQ(push.shards_reused, 3u);

  const auto before = cache.cache()->stats();
  // swap_store prefetches the incoming generation before publishing it;
  // with the parent view as reuse source the three unchanged shards are
  // adopted onto their existing mmaps, so the swap moves exactly ONE
  // shard over the wire — a cache miss for the child's new bytes.
  session.swap_store(served.server.base_url() + "child.ftcm");
  const auto child_view = std::dynamic_pointer_cast<const ShardedStoreView>(
      session.scheme().store_view());
  ASSERT_NE(child_view, nullptr);
  EXPECT_EQ(child_view->shards_adopted(), 3u);
  const auto after = cache.cache()->stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits, before.hits);  // adoption never re-touches the cache
  // The generation is already warm: another prefetch maps nothing new
  // and re-reports the constant adoption count.
  const auto pstats = child_view->prefetch(4);
  EXPECT_EQ(pstats.shards_opened, 0u);
  EXPECT_EQ(pstats.shards_adopted, 3u);
}

// ------------------------------------------------------------------
// Fault ladder: transient retries, persistent failures degrade the one
// shard while the rest keep serving.

// Shrinks the retry schedule (and restores it) so always-failing drills
// do not sleep through real backoff.
class ScopedRetryPolicy {
 public:
  ScopedRetryPolicy(unsigned attempts, std::chrono::microseconds backoff)
      : prior_(default_retry_policy()) {
    default_retry_policy().max_attempts = attempts;
    default_retry_policy().initial_backoff = backoff;
  }
  ~ScopedRetryPolicy() { default_retry_policy() = prior_; }

 private:
  RetryPolicy prior_;
};

TEST(RemoteStoreFaults, TransientReadFailureRetriesAndSucceeds) {
  ServedStore served("retry", 2);
  ScratchDir cache_dir("retry_cache");
  auto cache = std::make_shared<ShardCache>(cache_dir.path(), 0);
  const ScopedRetryPolicy policy(3, std::chrono::microseconds(50));

  const auto remote = RemoteStoreView::open(served.url(), true, nullptr,
                                            cache);
  // One injected EIO on the next socket read: the shard fetch fails
  // once, the open_shard retry loop re-fetches, the query answers.
  failpoint::Scoped fp("remote.read", "once:EIO");
  EXPECT_GT(remote->vertex_blob(0).size(), 0u);
  EXPECT_GE(fp.hits(), 1u);  // the failing recv plus the retry's reads
  EXPECT_EQ(remote->shards_quarantined(), 0u);
}

TEST(RemoteStoreFaults, PersistentFailureDegradesShardOthersKeepServing) {
  ServedStore served("degrade", 4);
  ScratchDir cache_dir("degrade_cache");
  auto cache = std::make_shared<ShardCache>(cache_dir.path(), 0);
  const ScopedRetryPolicy policy(2, std::chrono::microseconds(50));

  const auto remote = RemoteStoreView::open(served.url(), true, nullptr,
                                            cache);
  // Warm shard 0 while the origin is healthy.
  const VertexId healthy_v = remote->shards()[0].vertex_begin;
  EXPECT_GT(remote->vertex_blob(healthy_v).size(), 0u);

  // Every read now fails: the first touch of the LAST shard exhausts
  // its retries and quarantines exactly that shard.
  const auto& last = remote->shards()[remote->shards().size() - 1];
  const VertexId cold_v = last.vertex_begin;
  ASSERT_GT(last.vertex_end, last.vertex_begin);
  {
    failpoint::Scoped fp("remote.read", "always:EIO");
    try {
      (void)remote->vertex_blob(cold_v);
      FAIL() << "expected DegradedError";
    } catch (const DegradedError& e) {
      EXPECT_EQ(e.shard, remote->shards().size() - 1);
      EXPECT_EQ(e.vertex_begin, last.vertex_begin);
      EXPECT_EQ(e.vertex_end, last.vertex_end);
    }
    // Warm shards never touch the wire again: they answer even while
    // the origin is down.
    EXPECT_GT(remote->vertex_blob(healthy_v).size(), 0u);
  }
  EXPECT_EQ(remote->shards_quarantined(), 1u);
  // Quarantine is sticky — the shard stays dead after the fault clears
  // (a swap to a fresh generation is the recovery path).
  EXPECT_THROW((void)remote->vertex_blob(cold_v), DegradedError);
  const auto report = remote->quarantine_report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NE(report[0].reason.find("remote"), std::string::npos);
}

TEST(RemoteStoreFaults, CorruptOriginShardFailsTypedNotCrash) {
  ServedStore served("corrupt", 2);
  ScratchDir cache_dir("corrupt_cache");
  auto cache = std::make_shared<ShardCache>(cache_dir.path(), 0);
  const ScopedRetryPolicy policy(2, std::chrono::microseconds(50));

  // Flip a payload byte of shard 0 on the origin: the transfer works
  // but the digest check refuses to publish, and the shard degrades.
  const std::string shard_path = served.dir.file("store.ftcm.shard0.ftcs");
  auto bytes = read_file(shard_path);
  ASSERT_GT(bytes.size(), store::kHeaderBytes);
  bytes[bytes.size() - 1] ^= 0x40;
  {
    std::ofstream out(shard_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  const auto remote = RemoteStoreView::open(served.url(), true, nullptr,
                                            cache);
  EXPECT_THROW((void)remote->vertex_blob(remote->shards()[0].vertex_begin),
               DegradedError);
  EXPECT_EQ(cache->stats().entries, 0u);  // corrupt bytes never published
}

// ------------------------------------------------------------------
// Journal sidecar over the wire.

TEST(RemoteStore, JournalSidecarReplaysSameAsLocal) {
  ServedStore served("journal", 2, 37);
  ScratchDir cache_dir("journal_cache");
  const ScopedDefaultCache cache(cache_dir.path());

  // Journal one deleted edge next to the manifest; the origin serves it
  // as "<manifest>.jrnl" like any other object.
  const auto view = ShardedStoreView::open(served.manifest());
  const EdgeId dead_edge = 4;
  DeletionJournal::append(journal_path_for(served.manifest()),
                          view->info().payload_checksum, 3,
                          std::vector<EdgeId>{dead_edge});

  std::vector<BatchQueryEngine::Query> queries;
  for (VertexId s = 0; s + 1 < served.graph.num_vertices(); s += 3) {
    queries.push_back({s, s + 1});
  }
  BatchQueryEngine local_session(load_scheme(served.manifest()), FaultSpec{});
  BatchQueryEngine remote_session(load_scheme(served.url()), FaultSpec{});
  EXPECT_EQ(remote_session.num_faults(), local_session.num_faults());
  EXPECT_EQ(remote_session.run_sequential(queries),
            local_session.run_sequential(queries));
}

// ------------------------------------------------------------------
// Eviction during serving: a tiny budget stays correct, just slower.

TEST(RemoteStore, TinyCacheBudgetStillAnswersCorrectly) {
  ServedStore served("tiny", 4, 41);
  ScratchDir cache_dir("tiny_cache");
  // Budget below ONE shard: every entry evicts as soon as the next
  // fetch lands; already-mapped shards keep serving regardless.
  const ScopedDefaultCache cache(cache_dir.path(), 1024);

  const std::vector<EdgeId> faults{0};
  std::vector<BatchQueryEngine::Query> queries;
  for (VertexId s = 0; s < served.graph.num_vertices(); s += 2) {
    queries.push_back({s, (s + 11) % served.graph.num_vertices()});
  }
  BatchQueryEngine local_session(load_scheme(served.manifest()),
                                 FaultSpec::edges(faults));
  BatchQueryEngine remote_session(load_scheme(served.url()),
                                  FaultSpec::edges(faults));
  EXPECT_EQ(remote_session.run_sequential(queries),
            local_session.run_sequential(queries));
  const auto stats = cache.cache()->stats();
  EXPECT_GT(stats.evictions, 0u);
  // Under a budget below one shard, each publish evicts every other
  // entry: only the most recent fetch survives on disk.
  EXPECT_EQ(stats.entries, 1u);
}

}  // namespace
}  // namespace ftc::core
