// Tests for the Corollary 1 / Corollary 2 applications: weighted shortest
// paths, sparse covers, fault-tolerant approximate distance labels
// (estimate is an upper bound within the O(|F|k) stretch) and the routing
// simulation.
#include <gtest/gtest.h>

#include "distance/ft_distance.hpp"
#include "distance/ft_routing.hpp"
#include "distance/sparse_cover.hpp"
#include "distance/weighted_graph.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::distance {
namespace {

using graph::EdgeId;
using graph::VertexId;

WeightedGraph random_weighted(VertexId n, EdgeId m, Weight max_w,
                              std::uint64_t seed) {
  const graph::Graph g = graph::random_connected(n, m, seed);
  SplitMix64 rng(seed * 7 + 1);
  WeightedGraph wg(n);
  for (EdgeId e = 0; e < m; ++e) {
    wg.add_edge(g.edge(e).u, g.edge(e).v, 1 + rng.next_below(max_w));
  }
  return wg;
}

TEST(WeightedGraph, DijkstraMatchesBellmanFordStyleCheck) {
  const WeightedGraph g = random_weighted(40, 100, 10, 3);
  const auto dist = dijkstra(g, 0);
  EXPECT_EQ(dist[0], 0u);
  // Triangle inequality over every edge (certifies optimality together
  // with reachability).
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.topology().edge(e);
    EXPECT_LE(dist[ed.u], dist[ed.v] + g.weight(e));
    EXPECT_LE(dist[ed.v], dist[ed.u] + g.weight(e));
  }
}

TEST(WeightedGraph, FaultsAndRadius) {
  // Path 0-1-2 with weights 1, 10 and a direct edge 0-2 of weight 100.
  WeightedGraph g(3);
  const EdgeId e01 = g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 10);
  g.add_edge(0, 2, 100);
  EXPECT_EQ(exact_distance(g, 0, 2), 11u);
  std::vector<EdgeId> faults{e01};
  EXPECT_EQ(exact_distance(g, 0, 2, faults), 100u);
  const auto bounded = dijkstra(g, 0, {}, /*radius=*/5);
  EXPECT_EQ(bounded[1], 1u);
  EXPECT_EQ(bounded[2], kInfinity);  // both routes exceed the radius
}

TEST(SparseCover, CoversEveryBall) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const WeightedGraph g = random_weighted(50, 120, 8, 10 + seed);
    for (const Weight r : {2u, 8u, 32u}) {
      const SparseCover cover = build_sparse_cover(g, r, /*k=*/2);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_GE(cover.home_cluster[v], 0);
        const auto& cl = cover.clusters[cover.home_cluster[v]];
        // ball(v, r) must be inside the home cluster.
        const auto dist = dijkstra(g, v);
        std::vector<char> in_cluster(g.num_vertices(), 0);
        for (const VertexId u : cl.vertices) in_cluster[u] = 1;
        for (VertexId u = 0; u < g.num_vertices(); ++u) {
          if (dist[u] <= r) EXPECT_TRUE(in_cluster[u]) << "v=" << v;
        }
      }
    }
  }
}

TEST(SparseCover, RadiusBound) {
  const WeightedGraph g = random_weighted(60, 150, 6, 5);
  const unsigned k = 3;
  const Weight r = 4;
  const SparseCover cover = build_sparse_cover(g, r, k);
  for (const Cluster& cl : cover.clusters) {
    // Achieved radius stays below (k + 2) * r by the growth cutoff.
    EXPECT_LE(cl.radius, (k + 2) * r);
    const auto dist = dijkstra(g, cl.center);
    for (const VertexId u : cl.vertices) {
      EXPECT_LE(dist[u], cl.radius);
    }
  }
}

TEST(FtDistance, EstimateIsUpperBoundWithBoundedStretch) {
  SplitMix64 rng(21);
  const WeightedGraph g = random_weighted(36, 90, 4, 77);
  FtDistanceConfig cfg;
  cfg.f = 2;
  cfg.k = 2;
  const auto scheme = FtDistanceScheme::build(g, cfg);
  int finite_cases = 0;
  for (int it = 0; it < 120; ++it) {
    std::vector<EdgeId> faults;
    std::vector<DistEdgeLabel> fault_labels;
    const unsigned nf = rng.next_below(3);
    for (unsigned i = 0; i < nf; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
      faults.push_back(e);
      fault_labels.push_back(scheme.edge_label(e));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(36));
    const VertexId t = static_cast<VertexId>(rng.next_below(36));
    const Weight exact = exact_distance(g, s, t, faults);
    const Weight est = FtDistanceScheme::approx_distance(
        scheme.vertex_label(s), scheme.vertex_label(t), fault_labels);
    if (exact == kInfinity) {
      EXPECT_EQ(est, kInfinity);
      continue;
    }
    ++finite_cases;
    if (s == t) {
      continue;  // estimate may be a positive cluster bound; skip
    }
    ASSERT_NE(est, kInfinity) << "connected pair must get an estimate";
    EXPECT_GE(est, exact);  // estimates are true upper bounds
    // Stretch bound: (2|F|+1) * 2(k+1) * 2 (the scale can overshoot the
    // distance by at most 2x).
    const Weight stretch_cap =
        (2 * static_cast<Weight>(nf) + 1) * 2 * (cfg.k + 1) * 2;
    EXPECT_LE(est, std::max<Weight>(stretch_cap * exact, stretch_cap))
        << "s=" << s << " t=" << t;
  }
  EXPECT_GT(finite_cases, 60);
}

TEST(FtDistance, DisconnectionIsExact) {
  // Barbell with unit weights: cutting the bridge separates exactly.
  const graph::Graph base = graph::barbell(4, 0);
  WeightedGraph g(base.num_vertices());
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    g.add_edge(base.edge(e).u, base.edge(e).v, 1);
  }
  FtDistanceConfig cfg;
  cfg.f = 1;
  const auto scheme = FtDistanceScheme::build(g, cfg);
  // The bridge is the unique edge between the cliques {0..3} and {4..7}.
  EdgeId bridge = graph::kNoEdge;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if ((g.topology().edge(e).u < 4) != (g.topology().edge(e).v < 4)) {
      bridge = e;
    }
  }
  ASSERT_NE(bridge, graph::kNoEdge);
  std::vector<DistEdgeLabel> fl{scheme.edge_label(bridge)};
  EXPECT_EQ(FtDistanceScheme::approx_distance(scheme.vertex_label(0),
                                              scheme.vertex_label(5), fl),
            kInfinity);
  EXPECT_NE(FtDistanceScheme::approx_distance(scheme.vertex_label(0),
                                              scheme.vertex_label(3), fl),
            kInfinity);
}

TEST(FtRouter, DeliversWithBoundedStretch) {
  SplitMix64 rng(31);
  const WeightedGraph g = random_weighted(32, 96, 3, 55);
  FtDistanceConfig cfg;
  cfg.f = 2;
  cfg.k = 2;
  const auto scheme = FtDistanceScheme::build(g, cfg);
  const FtRouter router(g, scheme);
  int delivered = 0, attempts = 0;
  for (int it = 0; it < 60; ++it) {
    std::vector<EdgeId> faults;
    std::vector<DistEdgeLabel> fault_labels;
    for (unsigned i = 0; i < 2; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
      faults.push_back(e);
      fault_labels.push_back(scheme.edge_label(e));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(32));
    const VertexId t = static_cast<VertexId>(rng.next_below(32));
    const Weight exact = exact_distance(g, s, t, faults);
    if (exact == kInfinity || s == t) continue;
    ++attempts;
    const auto res = router.route(s, t, faults, fault_labels);
    if (res.delivered) {
      ++delivered;
      EXPECT_GE(res.path_weight, exact);
      // Greedy forwarding with loop avoidance: generous stretch cap.
      EXPECT_LE(res.path_weight, exact * 64 + 64);
    }
  }
  ASSERT_GT(attempts, 20);
  // Greedy label routing is not guaranteed to always deliver, but should
  // succeed on the vast majority of connected pairs.
  EXPECT_GE(delivered * 10, attempts * 8);
  EXPECT_GT(router.table_bits(0), 0u);
}

}  // namespace
}  // namespace ftc::distance
