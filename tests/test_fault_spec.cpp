// The FaultSpec fault model: canonicalization, endpoint-deletion rules,
// the vertex -> incident-edges reduction behind AdjacencyProvider, typed
// capability errors, and the dp21 session plumbing (Prepared fault-set
// state + reusable workspaces) that backs it.
#include <gtest/gtest.h>

#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

SchemeConfig test_config(BackendKind backend, unsigned f) {
  SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

TEST(FaultSpec, CanonicalizesOnce) {
  const std::vector<EdgeId> edges{7, 3, 7, 7, 1, 3};
  const std::vector<VertexId> vertices{9, 2, 9};
  const FaultSpec spec = FaultSpec::of(edges, vertices);
  EXPECT_EQ(std::vector<EdgeId>(spec.edge_faults().begin(),
                                spec.edge_faults().end()),
            (std::vector<EdgeId>{1, 3, 7}));
  EXPECT_EQ(std::vector<VertexId>(spec.vertex_faults().begin(),
                                  spec.vertex_faults().end()),
            (std::vector<VertexId>{2, 9}));
  EXPECT_TRUE(spec.has_vertex_faults());
  EXPECT_FALSE(spec.empty());
  EXPECT_EQ(spec.size(), 5u);

  EXPECT_TRUE(FaultSpec{}.empty());
  EXPECT_FALSE(FaultSpec{}.has_vertex_faults());
  EXPECT_FALSE(FaultSpec::edges(edges).has_vertex_faults());
  EXPECT_EQ(FaultSpec::vertices(vertices).size(), 2u);
}

TEST(FaultSpec, CapabilityErrorIsTypedAndBackCompatible) {
  // The typed error still satisfies pre-FaultSpec catch sites.
  EXPECT_THROW(throw CapabilityError("x"), std::invalid_argument);
}

TEST(VectorAdjacencyTest, MatchesGraphIncidence) {
  const Graph g = graph::barbell(5, 2);
  const VectorAdjacency adj(g);
  ASSERT_EQ(adj.num_vertices(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(adj.degree(v), g.degree(v));
    std::vector<EdgeId> got;
    adj.append_incident(v, got);
    const auto want = g.incident_edges(v);
    EXPECT_EQ(got, std::vector<EdgeId>(want.begin(), want.end()));
  }
}

class FaultModel : public ::testing::TestWithParam<BackendKind> {};

TEST_P(FaultModel, EndpointDeletionRules) {
  const Graph g = graph::cycle(8);
  const auto scheme = make_scheme(g, test_config(GetParam(), 6));
  ASSERT_NE(scheme->adjacency(), nullptr);
  const auto spec = FaultSpec::vertices(std::vector<VertexId>{3});
  EXPECT_FALSE(scheme->connected(3, 5, spec));
  EXPECT_FALSE(scheme->connected(5, 3, spec));
  EXPECT_TRUE(scheme->connected(3, 3, spec));  // connected to itself
  // Cutting one cycle vertex leaves the rest connected.
  EXPECT_TRUE(scheme->connected(2, 4, spec));
}

TEST_P(FaultModel, MixedFaultsMatchGroundTruthThroughEveryEntryPoint) {
  const Graph g = graph::random_connected(28, 70, 19);
  const auto scheme = make_scheme(g, test_config(GetParam(), 14));
  SplitMix64 rng(6);
  for (int it = 0; it < 25; ++it) {
    std::vector<VertexId> vf;
    for (unsigned i = 0; i < 1 + rng.next_below(2); ++i) {
      vf.push_back(static_cast<VertexId>(rng.next_below(g.num_vertices())));
    }
    std::vector<EdgeId> ef;
    for (unsigned i = 0; i < rng.next_below(3); ++i) {
      ef.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const auto spec = FaultSpec::of(ef, vf);
    const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const bool expected = graph::connected_avoiding(g, s, t, ef, vf);
    EXPECT_EQ(scheme->connected(s, t, spec), expected) << "it=" << it;

    // Session path: prepared fault set + reused workspace.
    const auto fault_set = scheme->prepare_faults(spec);
    const auto workspace = scheme->make_workspace();
    EXPECT_EQ(scheme->query(s, t, *fault_set, *workspace), expected)
        << "it=" << it;
  }
}

// One workspace serving many fault sets in arbitrary interleaving must
// answer exactly like throwaway workspaces — the dp21 backends now keep
// real mutable per-query state there (the AGM fragment sketches).
TEST_P(FaultModel, WorkspaceReuseAcrossFaultSetsIsExact) {
  const Graph g = graph::path_of_cliques(5, 4);
  const auto scheme = make_scheme(g, test_config(GetParam(), 6));
  SplitMix64 rng(11);

  std::vector<std::unique_ptr<ConnectivityScheme::FaultSet>> fault_sets;
  std::vector<FaultSpec> specs;
  for (int i = 0; i < 4; ++i) {
    std::vector<EdgeId> ef;
    for (unsigned j = 0; j < 1 + rng.next_below(3); ++j) {
      ef.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    std::vector<VertexId> vf;
    if (i % 2 == 1) {
      vf.push_back(static_cast<VertexId>(rng.next_below(g.num_vertices())));
    }
    specs.push_back(FaultSpec::of(ef, vf));
    fault_sets.push_back(scheme->prepare_faults(specs.back()));
  }

  const auto shared = scheme->make_workspace();
  for (int it = 0; it < 60; ++it) {
    const std::size_t which = rng.next_below(fault_sets.size());
    const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const bool with_shared =
        scheme->query(s, t, *fault_sets[which], *shared);
    const auto fresh = scheme->make_workspace();
    EXPECT_EQ(with_shared, scheme->query(s, t, *fault_sets[which], *fresh))
        << "it=" << it << " which=" << which;
    EXPECT_EQ(with_shared, scheme->connected(s, t, specs[which]))
        << "it=" << it << " which=" << which;
  }
}

TEST_P(FaultModel, NumFaultsCountsReducedEdges) {
  // Star: deleting the center takes down every edge.
  Graph g(5);
  for (VertexId v = 1; v < 5; ++v) g.add_edge(0, v);
  g.add_edge(1, 2);  // keep it 2-edge-connected enough to build
  const auto scheme = make_scheme(g, test_config(GetParam(), 6));
  const auto fs =
      scheme->prepare_faults(FaultSpec::vertices(std::vector<VertexId>{0}));
  EXPECT_EQ(fs->vertex_faults().size(), 1u);
  EXPECT_GE(fs->num_faults(), 1u);  // the 4 incident edges, deduplicated
  // The reduction and an explicit edge list collapse to the same set.
  const auto fs2 = scheme->prepare_faults(
      FaultSpec::of(std::vector<EdgeId>{0, 1, 2, 3},
                    std::vector<VertexId>{0}));
  EXPECT_EQ(fs2->num_faults(), fs->num_faults());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FaultModel,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           std::string name = backend_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ftc::core
