// Crash-consistency torture sweep: abort save_sharded, delta pushes,
// and journal appends at EVERY syscall boundary the write paths cross
// (open / write / fsync / close / rename / link / publish), one
// boundary at a time, and require that the prior generation reopens
// fully servable after each injected abort.
//
// The sweep is failpoint-driven: a "count"-mode observer first runs the
// operation cleanly to enumerate how many times each boundary is
// crossed, then the operation is replayed once per boundary with
// "nth:N:EIO" armed. Every replay must either succeed (sites like
// store.shard.link tolerate injected errors by falling back) or throw a
// typed StoreError — never crash — and must leave the parent store
// answering queries exactly as before.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/journal.hpp"
#include "core/label_store.hpp"
#include "core/sharded_store.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"
#include "util/failpoint.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

class ManifestFile {
 public:
  explicit ManifestFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_torture_" + name + "_" +
              std::to_string(::getpid()) + ".ftcm") {
    cleanup();
  }
  ~ManifestFile() { cleanup(); }
  const std::string& path() const { return path_; }
  std::string shard_path(unsigned k) const {
    return path_ + ".shard" + std::to_string(k) + ".ftcs";
  }
  void cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".jrnl").c_str());
    std::remove((path_ + ".jrnl.lock").c_str());
    for (unsigned k = 0; k < 64; ++k) std::remove(shard_path(k).c_str());
  }

 private:
  std::string path_;
};

class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_torture_" + name + "_" +
              std::to_string(::getpid()) + ".ftcs") {
    cleanup();
  }
  ~StoreFile() { cleanup(); }
  const std::string& path() const { return path_; }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".jrnl").c_str());
    std::remove((path_ + ".jrnl.lock").c_str());
  }
  std::string path_;
};

SchemeConfig test_config(unsigned f) {
  SchemeConfig cfg;
  cfg.backend = BackendKind::kCoreFtc;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  return cfg;
}

// Every failpoint the atomic-write / shard-stage machinery crosses.
constexpr const char* kWriteSites[] = {
    "store.write.open", "store.write.write", "store.write.fsync",
    "store.write.close", "store.write.rename",
};
constexpr const char* kShardSites[] = {
    "store.shard.link",
    "store.shard.publish",
};
constexpr const char* kJournalSites[] = {
    "journal.flock",
    "journal.read",
};

struct TortureResult {
  std::uint64_t boundaries = 0;  // distinct (site, nth) pairs swept
  std::uint64_t aborted = 0;     // replays that threw a typed StoreError
};

// Enumerate-then-replay over one site list. `op` is the operation under
// torture, `verify` must prove the prior generation still serves, and
// `cleanup` removes whatever artifacts `op` produced (run after the
// count pass and after every replay, successful or aborted).
void torture_sites(std::span<const char* const> sites,
                   const std::function<void()>& op,
                   const std::function<void()>& verify,
                   const std::function<void()>& cleanup,
                   TortureResult* res) {
  for (const char* site : sites) {
    std::uint64_t hits = 0;
    {
      failpoint::Scoped counter(site, "count");
      ASSERT_NO_THROW(op()) << "clean enumeration run failed at " << site;
      hits = counter.hits();
    }
    cleanup();
    res->boundaries += hits;
    for (std::uint64_t nth = 1; nth <= hits; ++nth) {
      {
        failpoint::Scoped fp(site,
                             "nth:" + std::to_string(nth) + ":EIO");
        try {
          op();  // tolerated fault (e.g. link fallback) or typed abort
        } catch (const StoreError&) {
          ++res->aborted;
        }
        // Anything else (SIGBUS, std::terminate, untyped exception)
        // escapes and fails the test — that is the point of the sweep.
      }
      verify();
      cleanup();
    }
  }
}

// Proves a sharded generation is FULLY servable: strict digest-verified
// reopen, every shard mapped, and a query sample answered exactly.
void expect_servable(const std::string& path, const Graph& g,
                     const std::vector<EdgeId>& faults,
                     std::span<const BatchQueryEngine::Query> sample) {
  const auto view = ShardedStoreView::open(path);
  (void)view->prefetch();
  ASSERT_EQ(view->shards_quarantined(), 0u);
  BatchQueryEngine session(load_scheme(path), FaultSpec::edges(faults));
  for (const auto& q : sample) {
    ASSERT_EQ(session.connected(q.s, q.t),
              graph::connected_avoiding(g, q.s, q.t, faults))
        << "prior generation answered wrong after an injected abort";
  }
}

std::vector<BatchQueryEngine::Query> sample_queries(VertexId n,
                                                    std::uint64_t seed,
                                                    int count) {
  SplitMix64 rng(seed);
  std::vector<BatchQueryEngine::Query> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(
        BatchQueryEngine::Query{static_cast<VertexId>(rng.next_below(n)),
                                static_cast<VertexId>(rng.next_below(n))});
  }
  return out;
}

// ------------------------------------------------------------------
// Full save to a fresh path: an abort at any boundary must leave the
// serving generation untouched and the aborted target free of shard
// litter (save_sharded's failure hygiene unlinks what it created).

TEST(Torture, FullSaveAbortsLeaveServingGenerationAndNoLitter) {
  ManifestFile parent("fullsave_parent");
  ManifestFile child("fullsave_child");
  const VertexId n = 64;
  const Graph g = graph::random_connected(n, 160, 5);
  const Graph g2 = graph::random_connected(n, 160, 6);
  const auto scheme = make_scheme(g, test_config(2));
  const auto scheme2 = make_scheme(g2, test_config(2));
  save_sharded(*scheme, parent.path(), 4);

  const std::vector<EdgeId> faults = {1, 33};
  const auto sample = sample_queries(n, 123, 24);

  const auto op = [&] { save_sharded(*scheme2, child.path(), 4); };
  const auto verify = [&] {
    expect_servable(parent.path(), g, faults, sample);
    // The child either completed (valid manifest) or aborted; aborted
    // saves must not leave orphan shard files behind.
    std::FILE* f = std::fopen(child.path().c_str(), "rb");
    if (f != nullptr) {
      std::fclose(f);
    } else {
      for (unsigned k = 0; k < 4; ++k) {
        std::FILE* s = std::fopen(child.shard_path(k).c_str(), "rb");
        EXPECT_EQ(s, nullptr) << "aborted save left shard litter: "
                              << child.shard_path(k);
        if (s != nullptr) std::fclose(s);
      }
    }
  };
  const auto cleanup = [&] { child.cleanup(); };

  TortureResult res;
  torture_sites(kWriteSites, op, verify, cleanup, &res);
  // 4 shards + manifest each cross every write boundary at least once.
  EXPECT_GE(res.boundaries, 5u * 5u);
  EXPECT_GT(res.aborted, 0u);

  TortureResult shard_res;
  torture_sites(std::span<const char* const>(&kShardSites[1], 1), op, verify,
                cleanup, &shard_res);
  EXPECT_GE(shard_res.boundaries, 4u);  // one publish rename per shard
  EXPECT_GT(shard_res.aborted, 0u);
}

// ------------------------------------------------------------------
// Delta push onto the parent's OWN path: unchanged shards are kept in
// place, only the manifest is rewritten — an abort at any manifest
// boundary must leave the store serving (possibly at the old epoch).

TEST(Torture, SamePathDeltaPushAbortsKeepStoreServable) {
  ManifestFile manifest("samepath");
  const VertexId n = 64;
  const Graph g = graph::random_connected(n, 160, 7);
  const auto scheme = make_scheme(g, test_config(2));
  save_sharded(*scheme, manifest.path(), 4);

  const std::vector<EdgeId> faults = {2, 50};
  const auto sample = sample_queries(n, 321, 24);

  const auto op = [&] {
    (void)save_sharded_delta(*scheme, manifest.path(), manifest.path());
  };
  const auto verify = [&] {
    expect_servable(manifest.path(), g, faults, sample);
  };

  TortureResult res;
  torture_sites(kWriteSites, op, verify, [] {}, &res);
  EXPECT_GE(res.boundaries, 5u);  // at least the manifest's own write
  EXPECT_GT(res.aborted, 0u);
}

// ------------------------------------------------------------------
// Delta push to a child path, both flavors: byte-identical shards
// (hard-link staging: link + publish boundaries) and rebuilt shards
// (full write boundaries). The parent must survive every abort — a
// delta push only ever reads or links the parent's files.

TEST(Torture, ChildDeltaPushAbortsLeaveParentIntact) {
  ManifestFile parent("delta_parent");
  ManifestFile child("delta_child");
  const VertexId n = 64;
  const Graph g = graph::random_connected(n, 160, 9);
  const Graph g2 = graph::random_connected(n, 160, 10);
  const auto scheme = make_scheme(g, test_config(2));
  const auto scheme2 = make_scheme(g2, test_config(2));
  save_sharded(*scheme, parent.path(), 4);

  const std::vector<EdgeId> faults = {4, 71};
  const auto sample = sample_queries(n, 555, 24);
  const auto verify = [&] {
    expect_servable(parent.path(), g, faults, sample);
  };
  const auto cleanup = [&] { child.cleanup(); };

  // Byte-identical push: every shard stages via hard link.
  const auto link_op = [&] {
    (void)save_sharded_delta(*scheme, child.path(), parent.path());
  };
  TortureResult link_res;
  torture_sites(kShardSites, link_op, verify, cleanup, &link_res);
  EXPECT_GE(link_res.boundaries, 8u);  // 4 links + 4 publish renames

  // Rebuilt push: every shard differs, so the full write path runs.
  const auto write_op = [&] {
    (void)save_sharded_delta(*scheme2, child.path(), parent.path());
  };
  TortureResult write_res;
  torture_sites(kWriteSites, write_op, verify, cleanup, &write_res);
  EXPECT_GE(write_res.boundaries, 5u * 5u);
  EXPECT_GT(write_res.aborted, 0u);
}

// ------------------------------------------------------------------
// Journal appends: the read-modify-write under the flock must either
// complete or leave the previous journal bytes in place — the store and
// its replayed deletions stay loadable after every injected abort.

TEST(Torture, JournalAppendAbortsKeepJournalValid) {
  StoreFile store("journal");
  const Graph g = graph::random_connected(48, 200, 13);
  const auto scheme = make_scheme(g, test_config(8));
  scheme->save(store.path());
  const auto view = LabelStoreView::open(store.path());
  const std::uint64_t digest = view->info().payload_checksum;
  const std::string jpath = journal_path_for(store.path());

  // Baseline frame, so an aborted append always has prior bytes to
  // preserve.
  const std::vector<EdgeId> baseline{0};
  ASSERT_EQ(DeletionJournal::append(jpath, digest, 64, baseline), 1u);

  EdgeId next_edge = 100;
  const auto op = [&] {
    const std::vector<EdgeId> one{next_edge++};
    (void)DeletionJournal::append(jpath, digest, 64, one);
  };
  const auto verify = [&] {
    const auto j = DeletionJournal::open(jpath);
    ASSERT_GE(j->num_frames(), 1u);
    ASSERT_GE(j->deleted_edges().size(), 1u);
    // The store still loads with the journal replayed into the fault
    // set.
    const auto served = load_scheme(store.path());
    ASSERT_NE(served, nullptr);
  };

  TortureResult res;
  torture_sites(kJournalSites, op, verify, [] {}, &res);
  torture_sites(kWriteSites, op, verify, [] {}, &res);
  EXPECT_GE(res.boundaries, 7u);
  EXPECT_GT(res.aborted, 0u);
}

}  // namespace
}  // namespace ftc::core
