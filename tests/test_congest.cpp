// Tests for the CONGEST simulator and the distributed label construction
// (Section 8 / Theorem 3): real message passing with enforced O(log n)
// message budgets, compared field-by-field against the centralized
// algorithms.
#include <gtest/gtest.h>

#include "congest/dist_labeling.hpp"
#include "congest/simulator.hpp"
#include "graph/euler_tour.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "sketch/rs_sketch.hpp"
#include "util/common.hpp"

namespace ftc::congest {
namespace {

using graph::EdgeId;
using graph::VertexId;

// A node that floods a token once: checks plumbing and accounting.
class FloodNode : public Node {
 public:
  FloodNode(const graph::Graph& g, VertexId self, bool start)
      : g_(g), self_(self), start_(start) {}

  bool reached = false;

  void on_round(unsigned round, std::span<const Message> inbox,
                std::vector<Message>* outbox) override {
    const bool trigger = (round == 0 && start_) || (!reached && !inbox.empty());
    if ((round == 0 && start_) || !inbox.empty()) reached = true;
    if (trigger) {
      for (const EdgeId e : g_.incident_edges(self_)) {
        Message msg;
        msg.edge = e;
        msg.payload = {1};
        msg.bits = 8;
        outbox->push_back(msg);
      }
    }
  }

 private:
  const graph::Graph& g_;
  VertexId self_;
  bool start_;
};

TEST(Simulator, FloodReachesEveryoneInDiameterRounds) {
  const graph::Graph g = graph::grid(5, 9);
  Simulator sim(g, 16);
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<FloodNode*> raw;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto node = std::make_unique<FloodNode>(g, v, v == 0);
    raw.push_back(node.get());
    nodes.push_back(std::move(node));
  }
  sim.attach(std::move(nodes));
  const auto stats = sim.run(1000);
  for (const auto* node : raw) EXPECT_TRUE(node->reached);
  // Grid diameter = 4 + 8 = 12; flood quiesces within diameter + O(1).
  EXPECT_LE(stats.rounds, 16u);
  EXPECT_GT(stats.messages, 0u);
  EXPECT_LE(stats.max_message_bits, 16u);
}

TEST(Simulator, EnforcesMessageBudget) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  class Oversize : public Node {
   public:
    void on_round(unsigned round, std::span<const Message>,
                  std::vector<Message>* outbox) override {
      if (round == 0) {
        Message msg;
        msg.edge = 0;
        msg.payload = {1, 2, 3, 4};
        msg.bits = 999;
        outbox->push_back(msg);
      }
    }
  };
  class Quiet : public Node {
   public:
    void on_round(unsigned, std::span<const Message>,
                  std::vector<Message>*) override {}
  };
  Simulator sim(g, 64);
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.push_back(std::make_unique<Oversize>());
  nodes.push_back(std::make_unique<Quiet>());
  sim.attach(std::move(nodes));
  EXPECT_THROW(sim.run(10), std::invalid_argument);
}

TEST(DistLabeling, MatchesCentralizedOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const graph::Graph g = graph::random_connected(40, 100, 9000 + seed);
    const unsigned k = 6;
    const auto dist = run_distributed_labeling(g, 0, k);

    // Rebuild the distributed tree centrally (children in vertex-id
    // order, as the distributed interval assignment uses).
    std::vector<EdgeId> parent_edge(g.num_vertices(), graph::kNoEdge);
    for (VertexId v = 1; v < g.num_vertices(); ++v) {
      for (const EdgeId e : g.incident_edges(v)) {
        if (g.other_endpoint(e, v) == dist.parent[v]) parent_edge[v] = e;
      }
      ASSERT_NE(parent_edge[v], graph::kNoEdge);
    }
    const auto t = graph::tree_from_parents(g, 0, dist.parent, parent_edge);
    const auto et = graph::euler_tour(t);

    // BFS optimality of the distributed tree.
    const auto tref = graph::bfs_spanning_tree(g, 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(dist.depth[v], tref.depth[v]) << "v=" << v;
    }
    // Ancestry intervals match the centralized pre-order exactly.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(dist.tin[v], et.tin[v]) << "v=" << v;
      EXPECT_EQ(dist.tout[v], et.tout[v]) << "v=" << v;
    }
    // Subtree syndromes match a direct centralized computation.
    std::vector<std::vector<gf::GF2_64>> expect(
        g.num_vertices(), std::vector<gf::GF2_64>(k, gf::GF2_64::zero()));
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (t.is_tree_edge[e]) continue;
      const auto& ed = g.edge(e);
      std::uint32_t ta = et.tin[ed.u], oa = et.tout[ed.u];
      std::uint32_t tb = et.tin[ed.v], ob = et.tout[ed.v];
      if (ta > tb) {
        std::swap(ta, tb);
        std::swap(oa, ob);
      }
      const gf::GF2_64 id((std::uint64_t{ta}) | (std::uint64_t{oa} << 16) |
                          (std::uint64_t{tb} << 32) |
                          (std::uint64_t{ob} << 48));
      const gf::GF2_64 id2 = id.square();
      for (const VertexId end : {ed.u, ed.v}) {
        gf::GF2_64 p = id;
        for (unsigned j = 0; j < k; ++j) {
          expect[end][j] += p;
          p *= id2;
        }
      }
    }
    // Aggregate bottom-up over the tree.
    std::vector<VertexId> order;
    {
      std::vector<VertexId> stack{0};
      while (!stack.empty()) {
        const VertexId u = stack.back();
        stack.pop_back();
        order.push_back(u);
        for (const VertexId c : t.children[u]) stack.push_back(c);
      }
      std::reverse(order.begin(), order.end());
    }
    for (const VertexId v : order) {
      if (v == 0) continue;
      for (unsigned j = 0; j < k; ++j) {
        expect[t.parent[v]][j] += expect[v][j];
      }
    }
    // expect[v] now holds subtree sums (accumulated child-to-parent in
    // post-order, matching the distributed convergecast semantics)...
    // recompute properly: the loop above already turned expect[v] into
    // subtree sums when v is reached before its parent.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(dist.subtree_syndromes[v].size(), k) << "v=" << v;
      for (unsigned j = 0; j < k; ++j) {
        EXPECT_EQ(dist.subtree_syndromes[v][j], expect[v][j])
            << "v=" << v << " j=" << j;
      }
    }
  }
}

TEST(DistLabeling, PipelinedRoundsScaleAsDepthPlusK) {
  // Path graph: depth n-1 dominates; complete-ish graph: k dominates.
  graph::Graph path(60);
  for (VertexId i = 0; i + 1 < 60; ++i) path.add_edge(i, i + 1);
  const auto r1 = run_distributed_labeling(path, 0, 4);
  EXPECT_GT(r1.stats.rounds, 50u);  // ~depth-bound

  const graph::Graph dense = graph::random_connected(30, 200, 2);
  const auto r2 = run_distributed_labeling(dense, 0, 40);
  // Depth ~2-3; rounds dominated by the k-slot pipeline + setup.
  EXPECT_LT(r2.stats.rounds, 40u + 30u);
  EXPECT_GE(r2.stats.rounds, 40u);
}

TEST(DistLabeling, MessageBudgetRespected) {
  const graph::Graph g = graph::random_connected(50, 130, 3);
  const auto r = run_distributed_labeling(g, 0, 8);
  // Budget in run_distributed_labeling: 8 + 2*max(2 ceil(lg n), 64).
  EXPECT_LE(r.stats.max_message_bits, 8u + 2 * 64u);
  EXPECT_GT(r.stats.total_bits, 0u);
}

TEST(NetfindRoundModel, ShapeChecks) {
  // Model grows with both m and D and is sub-linear in m.
  const auto base = netfind_round_model(10000, 10);
  EXPECT_GT(netfind_round_model(40000, 10), base);
  EXPECT_GT(netfind_round_model(10000, 40), base);
  EXPECT_LT(netfind_round_model(40000, 10), 4 * base);
  EXPECT_EQ(netfind_round_model(0, 10), 0u);
}

}  // namespace
}  // namespace ftc::congest
