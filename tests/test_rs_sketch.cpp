// Tests for the deterministic k-threshold set sketch (RsSketch), the
// paper's replacement for randomized graph sketches (Proposition 2 and
// Proposition 6 / Appendix B adaptivity).
#include <gtest/gtest.h>

#include <set>

#include "sketch/rs_sketch.hpp"
#include "util/common.hpp"

namespace ftc::sketch {
namespace {

using gf::GF2_128;
using gf::GF2_64;

template <typename F>
std::vector<F> random_distinct_nonzero(SplitMix64& rng, unsigned count) {
  std::set<F> s;
  while (s.size() < count) {
    F v;
    if constexpr (F::kWords == 2) {
      v = F(rng.next(), rng.next());
    } else {
      v = F(rng.next());
    }
    if (!v.is_zero()) s.insert(v);
  }
  return {s.begin(), s.end()};
}

template <typename F>
class RsSketchTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<GF2_64, GF2_128>;
TYPED_TEST_SUITE(RsSketchTest, FieldTypes);

TYPED_TEST(RsSketchTest, DecodeExactForAllSizesUpToK) {
  using F = TypeParam;
  const unsigned k = 12;
  SplitMix64 rng(31);
  for (unsigned size = 0; size <= k; ++size) {
    for (int it = 0; it < 5; ++it) {
      auto xs = random_distinct_nonzero<F>(rng, size);
      RsSketch<F> sk(k);
      for (const F& x : xs) sk.toggle(x);
      auto dec = sk.decode(k);
      ASSERT_TRUE(dec.has_value()) << "size " << size;
      std::sort(xs.begin(), xs.end());
      EXPECT_EQ(*dec, xs);
    }
  }
}

TYPED_TEST(RsSketchTest, ToggleTwiceErases) {
  using F = TypeParam;
  RsSketch<F> sk(8);
  const F a(123456789);
  sk.toggle(a);
  EXPECT_FALSE(sk.is_zero());
  sk.toggle(a);
  EXPECT_TRUE(sk.is_zero());
  EXPECT_THROW(sk.toggle(F::zero()), std::invalid_argument);
}

TYPED_TEST(RsSketchTest, MergeIsSymmetricDifference) {
  using F = TypeParam;
  const unsigned k = 16;
  SplitMix64 rng(32);
  for (int it = 0; it < 20; ++it) {
    const auto pool = random_distinct_nonzero<F>(rng, 20);
    // A = pool[0..11], B = pool[6..17]; A xor B = pool[0..5] + pool[12..17].
    RsSketch<F> a(k), b(k);
    for (int i = 0; i < 12; ++i) a.toggle(pool[i]);
    for (int i = 6; i < 18; ++i) b.toggle(pool[i]);
    a.merge(b);
    auto dec = a.decode(k);
    ASSERT_TRUE(dec.has_value());
    std::vector<F> expect;
    for (int i = 0; i < 6; ++i) expect.push_back(pool[i]);
    for (int i = 12; i < 18; ++i) expect.push_back(pool[i]);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(*dec, expect);
  }
}

TYPED_TEST(RsSketchTest, PrefixIsSmallerThresholdSketch) {
  // Proposition 6: the first k' syndromes are the k'-threshold sketch.
  using F = TypeParam;
  const unsigned k = 16;
  SplitMix64 rng(33);
  auto xs = random_distinct_nonzero<F>(rng, 5);
  RsSketch<F> sk(k);
  for (const F& x : xs) sk.toggle(x);
  RsSketch<F> direct(6);
  for (const F& x : xs) direct.toggle(x);
  const RsSketch<F> pre = sk.prefix(6);
  EXPECT_TRUE(std::equal(pre.syndromes().begin(), pre.syndromes().end(),
                         direct.syndromes().begin()));
  auto dec = pre.decode(6);
  ASSERT_TRUE(dec.has_value());
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(*dec, xs);
}

TYPED_TEST(RsSketchTest, AdaptiveDecodeMatchesFull) {
  using F = TypeParam;
  const unsigned k = 32;
  SplitMix64 rng(34);
  for (unsigned size : {0u, 1u, 2u, 3u, 9u, 31u}) {
    auto xs = random_distinct_nonzero<F>(rng, size);
    RsSketch<F> sk(k);
    for (const F& x : xs) sk.toggle(x);
    auto a = sk.decode_adaptive();
    auto b = sk.decode(k);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
  }
}

TYPED_TEST(RsSketchTest, OverCapacityFailsStop) {
  // With |X| > k the decoder must not fabricate an answer: on random
  // instances it returns nullopt (full-syndrome verification).
  using F = TypeParam;
  const unsigned k = 8;
  SplitMix64 rng(35);
  for (unsigned size : {9u, 10u, 12u, 16u}) {
    for (int it = 0; it < 10; ++it) {
      const auto xs = random_distinct_nonzero<F>(rng, size);
      RsSketch<F> sk(k);
      for (const F& x : xs) sk.toggle(x);
      EXPECT_EQ(sk.decode(k), std::nullopt) << "size " << size;
      EXPECT_EQ(sk.decode_adaptive(), std::nullopt) << "size " << size;
    }
  }
}

TYPED_TEST(RsSketchTest, DeterministicAcrossRebuilds) {
  using F = TypeParam;
  SplitMix64 rng(36);
  auto xs = random_distinct_nonzero<F>(rng, 7);
  RsSketch<F> a(10), b(10);
  for (const F& x : xs) a.toggle(x);
  // Insert in reverse order: syndromes are order-independent.
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) b.toggle(*it);
  EXPECT_TRUE(std::equal(a.syndromes().begin(), a.syndromes().end(),
                         b.syndromes().begin()));
}

TYPED_TEST(RsSketchTest, SizeAccounting) {
  using F = TypeParam;
  RsSketch<F> sk(24);
  EXPECT_EQ(sk.size_bits(), 24u * F::kBits);
  EXPECT_EQ(sk.k(), 24u);
}

TYPED_TEST(RsSketchTest, DecodeRespectsThresholdArgument) {
  using F = TypeParam;
  const unsigned k = 16;
  SplitMix64 rng(37);
  auto xs = random_distinct_nonzero<F>(rng, 6);
  RsSketch<F> sk(k);
  for (const F& x : xs) sk.toggle(x);
  // t smaller than |X|: must fail (verification), not fabricate.
  EXPECT_EQ(sk.decode(3), std::nullopt);
  auto dec = sk.decode(6);
  ASSERT_TRUE(dec.has_value());
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(*dec, xs);
  EXPECT_THROW(sk.decode(k + 1), std::invalid_argument);
}

TEST(OddPowerSums, MatchesDirectComputation) {
  using F = GF2_64;
  SplitMix64 rng(38);
  const auto xs = random_distinct_nonzero<F>(rng, 5);
  const auto syn = odd_power_sums<F>(xs, 4);
  for (unsigned j = 0; j < 4; ++j) {
    F expect = F::zero();
    for (const F& x : xs) expect += gf::pow(x, 2 * j + 1);
    EXPECT_EQ(syn[j], expect);
  }
}

}  // namespace
}  // namespace ftc::sketch
