// Tests for the randomized AGM l0-sampler sketch (baseline engine).
#include <gtest/gtest.h>

#include <set>

#include "sketch/agm_sketch.hpp"
#include "util/common.hpp"

namespace ftc::sketch {
namespace {

PackedId random_id(SplitMix64& rng) {
  PackedId id{rng.next(), rng.next()};
  if (id.is_zero()) id.lo = 1;
  return id;
}

TEST(AgmSketch, SingletonSamplesExactly) {
  SplitMix64 rng(41);
  for (int it = 0; it < 50; ++it) {
    AgmSketch sk(20, 4, /*seed=*/it);
    const PackedId id = random_id(rng);
    sk.toggle(id);
    auto s = sk.sample();
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*s, id);
    EXPECT_FALSE(sk.looks_empty());
  }
}

TEST(AgmSketch, ToggleTwiceErases) {
  AgmSketch sk(16, 3, 7);
  const PackedId id{123, 456};
  sk.toggle(id);
  sk.toggle(id);
  EXPECT_TRUE(sk.looks_empty());
  EXPECT_EQ(sk.sample(), std::nullopt);
  EXPECT_THROW(sk.toggle(PackedId{}), std::invalid_argument);
}

TEST(AgmSketch, SampleReturnsMemberWhp) {
  SplitMix64 rng(42);
  int success = 0;
  const int kTrials = 200;
  for (int it = 0; it < kTrials; ++it) {
    const unsigned size = 1 + rng.next_below(64);
    std::set<PackedId> set;
    AgmSketch sk(24, 4, /*seed=*/1000 + it);
    while (set.size() < size) {
      const PackedId id = random_id(rng);
      if (set.insert(id).second) sk.toggle(id);
    }
    auto s = sk.sample();
    if (s.has_value() && set.count(*s)) ++success;
  }
  // Failure probability per trial is ~(3/4)^reps-ish; expect near-perfect.
  EXPECT_GE(success, kTrials * 95 / 100);
}

TEST(AgmSketch, MergeIsSymmetricDifference) {
  SplitMix64 rng(43);
  AgmSketch a(20, 4, 99), b(20, 4, 99);
  const PackedId shared = random_id(rng);
  const PackedId only_a = random_id(rng);
  a.toggle(shared);
  a.toggle(only_a);
  b.toggle(shared);
  a.merge(b);
  // A xor B = {only_a}.
  auto s = a.sample();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, only_a);
}

TEST(AgmSketch, MergeRequiresCompatibleParams) {
  AgmSketch a(20, 4, 1), b(20, 4, 2), c(10, 4, 1);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(AgmSketch, SizeAccounting) {
  AgmSketch sk(20, 4, 0);
  EXPECT_EQ(sk.size_bits(), 20u * 4u * 3u * 64u);
}

}  // namespace
}  // namespace ftc::sketch
