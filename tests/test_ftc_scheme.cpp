// End-to-end tests of the f-FTC labeling scheme (Theorem 1): every query
// answered from labels alone is checked against BFS ground truth, across
// graph families, scheme kinds, fault-set sizes and decoder options.
#include <gtest/gtest.h>

#include "core/ftc_query.hpp"
#include "core/ftc_scheme.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

// Runs random fault/query sweeps of scheme answers vs BFS ground truth.
void sweep_queries(const Graph& g, const FtcScheme& scheme, unsigned f,
                   int iterations, std::uint64_t seed,
                   const QueryOptions& options = {}) {
  SplitMix64 rng(seed);
  for (int it = 0; it < iterations; ++it) {
    const unsigned nf = rng.next_below(f + 1);
    std::vector<EdgeId> faults;
    std::vector<EdgeLabel> fault_labels;
    for (unsigned i = 0; i < nf; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
      faults.push_back(e);
      fault_labels.push_back(scheme.edge_label(e));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const VertexId t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const bool expect = graph::connected_avoiding(g, s, t, faults);
    const bool got =
        FtcDecoder::connected(scheme.vertex_label(s), scheme.vertex_label(t),
                              fault_labels, options);
    ASSERT_EQ(got, expect) << "s=" << s << " t=" << t << " faults=" << nf
                           << " it=" << it;
  }
}

struct SchemeCase {
  SchemeKind kind;
  const char* name;
};

class FtcSchemeTest : public ::testing::TestWithParam<SchemeCase> {};

INSTANTIATE_TEST_SUITE_P(
    Kinds, FtcSchemeTest,
    ::testing::Values(SchemeCase{SchemeKind::kDeterministic, "det"},
                      SchemeCase{SchemeKind::kRandomized, "rand"}),
    [](const auto& info) { return info.param.name; });

TEST_P(FtcSchemeTest, RandomGraphsRandomFaults) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = graph::random_connected(40, 110, 4000 + seed);
    FtcConfig cfg;
    cfg.kind = GetParam().kind;
    cfg.f = 4;
    const FtcScheme scheme = FtcScheme::build(g, cfg);
    sweep_queries(g, scheme, 4, 60, 5000 + seed);
  }
}

TEST_P(FtcSchemeTest, StructuredGraphs) {
  const SchemeCase sc = GetParam();
  FtcConfig cfg;
  cfg.kind = sc.kind;
  cfg.f = 3;
  for (const Graph& g :
       {graph::grid(5, 8), graph::cycle(24), graph::hypercube(4),
        graph::barbell(5, 2), graph::path_of_cliques(4, 4)}) {
    const FtcScheme scheme = FtcScheme::build(g, cfg);
    sweep_queries(g, scheme, 3, 40, 777);
  }
}

TEST_P(FtcSchemeTest, TreeInput) {
  // No non-tree edges at all: every tree fault disconnects.
  FtcConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.f = 3;
  const Graph g = graph::random_connected(30, 29, 8);
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  sweep_queries(g, scheme, 3, 60, 999);
}

TEST(FtcScheme, DisconnectingCuts) {
  // Barbell: cutting the bridge path must separate the cliques.
  const Graph g = graph::barbell(6, 1);  // vertices 0..5, 6..11, mid 12
  FtcConfig cfg;
  cfg.f = 2;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  // Find the two bridge edges (those incident to vertex 12).
  std::vector<EdgeLabel> bridge;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).u == 12 || g.edge(e).v == 12) {
      bridge.push_back(scheme.edge_label(e));
    }
  }
  ASSERT_EQ(bridge.size(), 2u);
  EXPECT_FALSE(FtcDecoder::connected(scheme.vertex_label(0),
                                     scheme.vertex_label(7), bridge));
  EXPECT_TRUE(FtcDecoder::connected(scheme.vertex_label(0),
                                    scheme.vertex_label(5), bridge));
  EXPECT_TRUE(FtcDecoder::connected(scheme.vertex_label(6),
                                    scheme.vertex_label(11), bridge));
  // Every path edge is itself a bridge: one alone already separates.
  EXPECT_FALSE(FtcDecoder::connected(scheme.vertex_label(0),
                                     scheme.vertex_label(7),
                                     std::span(&bridge[0], 1)));
  EXPECT_TRUE(FtcDecoder::connected(scheme.vertex_label(0),
                                    scheme.vertex_label(5),
                                    std::span(&bridge[0], 1)));
}

TEST(FtcScheme, EdgeCases) {
  const Graph g = graph::random_connected(20, 50, 42);
  FtcConfig cfg;
  cfg.f = 3;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  const auto s = scheme.vertex_label(3);
  // s == t, with and without faults.
  EXPECT_TRUE(FtcDecoder::connected(s, s, {}));
  std::vector<EdgeLabel> faults{scheme.edge_label(0), scheme.edge_label(1)};
  EXPECT_TRUE(FtcDecoder::connected(s, s, faults));
  // Empty fault set: connected graph.
  EXPECT_TRUE(FtcDecoder::connected(s, scheme.vertex_label(17), {}));
  // Duplicate fault labels are deduplicated.
  std::vector<EdgeLabel> dup{scheme.edge_label(5), scheme.edge_label(5),
                             scheme.edge_label(5)};
  std::vector<EdgeId> one{5};
  EXPECT_EQ(FtcDecoder::connected(s, scheme.vertex_label(9), dup),
            graph::connected_avoiding(g, 3, 9, one));
}

TEST(FtcScheme, AllIncidentEdgesFaulty) {
  // Cutting every edge around a vertex isolates it.
  const Graph g = graph::random_connected(25, 60, 77);
  const VertexId victim = 5;
  std::vector<EdgeId> faults(g.incident_edges(victim).begin(),
                             g.incident_edges(victim).end());
  FtcConfig cfg;
  cfg.f = static_cast<unsigned>(faults.size());
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  std::vector<EdgeLabel> labels;
  for (const EdgeId e : faults) labels.push_back(scheme.edge_label(e));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == victim) continue;
    EXPECT_FALSE(FtcDecoder::connected(scheme.vertex_label(victim),
                                       scheme.vertex_label(v), labels));
  }
  // The rest of the graph may or may not stay connected; check oracle.
  for (VertexId v = 0; v < 5; ++v) {
    for (VertexId w = 6; w < 10; ++w) {
      EXPECT_EQ(FtcDecoder::connected(scheme.vertex_label(v),
                                      scheme.vertex_label(w), labels),
                graph::connected_avoiding(g, v, w, faults));
    }
  }
}

TEST(FtcScheme, ProvableModeSmallGraphExhaustive) {
  // With provable k, enumerate every fault pair and every vertex pair.
  const Graph g = graph::random_connected(10, 18, 3);
  FtcConfig cfg;
  cfg.f = 2;
  cfg.k_mode = KMode::kProvable;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  for (EdgeId e1 = 0; e1 < g.num_edges(); ++e1) {
    for (EdgeId e2 = e1; e2 < g.num_edges(); ++e2) {
      std::vector<EdgeId> faults{e1, e2};
      std::vector<EdgeLabel> labels{scheme.edge_label(e1),
                                    scheme.edge_label(e2)};
      for (VertexId s = 0; s < g.num_vertices(); ++s) {
        for (VertexId t = s + 1; t < g.num_vertices(); ++t) {
          ASSERT_EQ(FtcDecoder::connected(scheme.vertex_label(s),
                                          scheme.vertex_label(t), labels),
                    graph::connected_avoiding(g, s, t, faults))
              << "e1=" << e1 << " e2=" << e2 << " s=" << s << " t=" << t;
        }
      }
    }
  }
}

TEST(FtcScheme, DecoderOptionAblationsAgree) {
  const Graph g = graph::random_connected(35, 90, 55);
  FtcConfig cfg;
  cfg.f = 4;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  SplitMix64 rng(66);
  for (int it = 0; it < 50; ++it) {
    std::vector<EdgeId> faults;
    std::vector<EdgeLabel> labels;
    for (unsigned i = 0; i < 4; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
      faults.push_back(e);
      labels.push_back(scheme.edge_label(e));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(35));
    const VertexId t = static_cast<VertexId>(rng.next_below(35));
    const bool expect = graph::connected_avoiding(g, s, t, faults);
    for (const bool adaptive : {true, false}) {
      for (const bool smallest : {true, false}) {
        QueryOptions opt;
        opt.adaptive = adaptive;
        opt.smallest_cut_first = smallest;
        EXPECT_EQ(FtcDecoder::connected(scheme.vertex_label(s),
                                        scheme.vertex_label(t), labels, opt),
                  expect)
            << "adaptive=" << adaptive << " smallest=" << smallest;
      }
    }
  }
}

TEST(FtcScheme, QueryStatsPopulated) {
  const Graph g = graph::path_of_cliques(5, 4);
  FtcConfig cfg;
  cfg.f = 4;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  // Fault the four bridges: fragments = 5.
  std::vector<EdgeLabel> labels;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (ed.u / 4 != ed.v / 4) labels.push_back(scheme.edge_label(e));
  }
  ASSERT_EQ(labels.size(), 4u);
  QueryStats stats;
  EXPECT_FALSE(FtcDecoder::connected(scheme.vertex_label(0),
                                     scheme.vertex_label(19), labels,
                                     QueryOptions{}, &stats));
  EXPECT_EQ(stats.fragments, 5u);
  // Bridges are tree edges, so every fragment sketch is zero: levels are
  // scanned but no sketch decode is ever needed.
  EXPECT_GT(stats.levels_scanned, 0u);
  EXPECT_EQ(stats.outdetect_calls, 0u);

  // On a cycle, faulting one tree edge splits the tree into two fragments
  // that only a non-tree edge reconnects: decoding must actually run.
  const Graph cyc = graph::cycle(12);
  FtcConfig cfg2;
  cfg2.f = 2;
  const FtcScheme scheme2 = FtcScheme::build(cyc, cfg2);
  std::vector<EdgeLabel> labels2{scheme2.edge_label(0)};  // edge (0, 1)
  QueryStats stats2;
  EXPECT_TRUE(FtcDecoder::connected(scheme2.vertex_label(0),
                                    scheme2.vertex_label(1), labels2,
                                    QueryOptions{}, &stats2));
  EXPECT_GT(stats2.outdetect_calls, 0u);
  EXPECT_GT(stats2.merges, 0u);
}

TEST(FtcScheme, GF128FieldForced) {
  const Graph g = graph::random_connected(30, 70, 21);
  FtcConfig cfg;
  cfg.f = 3;
  cfg.field = FieldKind::kGF128;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  EXPECT_EQ(scheme.params().field_bits, 128);
  sweep_queries(g, scheme, 3, 40, 2222);
}

TEST(FtcScheme, DeterministicSchemeBitReproducible) {
  const Graph g = graph::random_connected(30, 70, 13);
  FtcConfig cfg;
  cfg.f = 3;
  const FtcScheme a = FtcScheme::build(g, cfg);
  const FtcScheme b = FtcScheme::build(g, cfg);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(serialize(a.edge_label(e)), serialize(b.edge_label(e)));
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(serialize(a.vertex_label(v)), serialize(b.vertex_label(v)));
  }
}

TEST(FtcScheme, SerializationRoundTrip) {
  const Graph g = graph::random_connected(25, 60, 31);
  FtcConfig cfg;
  cfg.f = 2;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  const VertexLabel v = scheme.vertex_label(7);
  const auto vb = serialize(v);
  const VertexLabel v2 = deserialize_vertex_label(vb);
  EXPECT_EQ(v2.params, v.params);
  EXPECT_EQ(v2.anc, v.anc);
  const EdgeLabel e = scheme.edge_label(11);
  const auto eb = serialize(e);
  const EdgeLabel e2 = deserialize_edge_label(eb);
  EXPECT_EQ(e2.params, e.params);
  EXPECT_EQ(e2.upper, e.upper);
  EXPECT_EQ(e2.lower, e.lower);
  EXPECT_EQ(e2.sketch_words, e.sketch_words);
  // Queries on deserialized labels behave identically.
  std::vector<EdgeLabel> faults{e2};
  EXPECT_EQ(FtcDecoder::connected(v2, deserialize_vertex_label(
                                          serialize(scheme.vertex_label(9))),
                                  faults),
            graph::connected_avoiding(g, 7, 9, std::vector<EdgeId>{11}));
}

TEST(FtcScheme, LabelSizeAccounting) {
  const Graph g = graph::random_connected(30, 70, 17);
  FtcConfig cfg;
  cfg.f = 2;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  const auto& p = scheme.params();
  EXPECT_EQ(scheme.vertex_label_bits(), 2 * p.coord_bits());
  EXPECT_EQ(scheme.edge_label_bits(),
            4 * p.coord_bits() +
                static_cast<std::size_t>(p.num_levels) * p.k * p.field_bits);
  // Serialized size is consistent (up to the fixed header + padding byte).
  const auto bytes = serialize(scheme.edge_label(0));
  EXPECT_LE(scheme.edge_label_bits(), bytes.size() * 8);
  EXPECT_LE(bytes.size() * 8,
            scheme.edge_label_bits() + /*header*/ 112 + /*padding*/ 8);
}

TEST(FtcScheme, RejectsBadInputs) {
  Graph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.add_edge(2, 3);
  EXPECT_THROW(FtcScheme::build(disconnected, FtcConfig{}),
               std::invalid_argument);
  // Mismatched labels from two different schemes.
  const Graph g1 = graph::random_connected(20, 40, 1);
  const Graph g2 = graph::random_connected(24, 50, 2);
  const FtcScheme s1 = FtcScheme::build(g1, FtcConfig{});
  const FtcScheme s2 = FtcScheme::build(g2, FtcConfig{});
  std::vector<EdgeLabel> mixed{s2.edge_label(0)};
  EXPECT_THROW(FtcDecoder::connected(s1.vertex_label(0), s1.vertex_label(1),
                                     mixed),
               std::invalid_argument);
}

TEST(FtcScheme, SingleVertexAndTinyGraphs) {
  Graph g1(1);
  const FtcScheme s1 = FtcScheme::build(g1, FtcConfig{});
  EXPECT_TRUE(FtcDecoder::connected(s1.vertex_label(0), s1.vertex_label(0), {}));

  Graph g2(2);
  g2.add_edge(0, 1);
  FtcConfig cfg;
  cfg.f = 1;
  const FtcScheme s2 = FtcScheme::build(g2, cfg);
  std::vector<EdgeLabel> f{s2.edge_label(0)};
  EXPECT_FALSE(FtcDecoder::connected(s2.vertex_label(0), s2.vertex_label(1), f));
  EXPECT_TRUE(FtcDecoder::connected(s2.vertex_label(0), s2.vertex_label(1), {}));
}

TEST(FtcScheme, FaultsBeyondFStillSupported) {
  // Appendix B: the construction is universal in f; larger fault sets keep
  // working as long as sketch capacity suffices (it does at these sizes).
  const Graph g = graph::random_connected(30, 80, 91);
  FtcConfig cfg;
  cfg.f = 2;
  cfg.k_scale = 6.0;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  sweep_queries(g, scheme, 6, 40, 3333);
}

}  // namespace
}  // namespace ftc::core
