// Tests for the GF(2^m) field implementations: modulus irreducibility,
// carry-less multiply consistency, field axioms, Frobenius structure,
// and the Artin-Schreier / quadratic solvers used by the root finder.
#include <gtest/gtest.h>

#include "gf/clmul.hpp"
#include "gf/gf2.hpp"
#include "gf/modulus_check.hpp"
#include "util/common.hpp"

namespace ftc::gf {
namespace {

TEST(ModulusCheck, AllStandardModuliAreIrreducible) {
  EXPECT_TRUE(standard_modulus_is_irreducible(16));
  EXPECT_TRUE(standard_modulus_is_irreducible(32));
  EXPECT_TRUE(standard_modulus_is_irreducible(64));
  EXPECT_TRUE(standard_modulus_is_irreducible(128));
}

TEST(Clmul, IntrinsicMatchesPortable) {
  SplitMix64 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next();
    const U128 x = clmul(a, b);
    const U128 y = clmul_portable(a, b);
    ASSERT_EQ(x.lo, y.lo);
    ASSERT_EQ(x.hi, y.hi);
  }
}

TEST(Clmul, KnownValues) {
  // (x + 1) * (x + 1) = x^2 + 1 (carry-less).
  const U128 p = clmul(0b11, 0b11);
  EXPECT_EQ(p.lo, 0b101u);
  EXPECT_EQ(p.hi, 0u);
  // x^63 * x^63 = x^126.
  const U128 q = clmul(1ULL << 63, 1ULL << 63);
  EXPECT_EQ(q.lo, 0u);
  EXPECT_EQ(q.hi, 1ULL << 62);
}

template <typename F>
class FieldTest : public ::testing::Test {
 public:
  static F random_elem(SplitMix64& rng) {
    if constexpr (F::kWords == 2) {
      return F(rng.next(), F::kBits > 64 ? rng.next() : 0);
    } else {
      return F(rng.next());
    }
  }
  static F random_nonzero(SplitMix64& rng) {
    F v;
    do {
      v = random_elem(rng);
    } while (v.is_zero());
    return v;
  }
};

using FieldTypes = ::testing::Types<GF2_16, GF2_32, GF2_64, GF2_128>;
TYPED_TEST_SUITE(FieldTest, FieldTypes);

TYPED_TEST(FieldTest, AdditiveGroupAxioms) {
  using F = TypeParam;
  SplitMix64 rng(1);
  for (int i = 0; i < 500; ++i) {
    const F a = this->random_elem(rng);
    const F b = this->random_elem(rng);
    const F c = this->random_elem(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + F::zero(), a);
    EXPECT_TRUE((a + a).is_zero());  // characteristic 2
    EXPECT_EQ(a - b, a + b);
  }
}

TYPED_TEST(FieldTest, MultiplicativeAxioms) {
  using F = TypeParam;
  SplitMix64 rng(2);
  for (int i = 0; i < 300; ++i) {
    const F a = this->random_elem(rng);
    const F b = this->random_elem(rng);
    const F c = this->random_elem(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * F::one(), a);
    EXPECT_TRUE((a * F::zero()).is_zero());
    EXPECT_EQ(a * (b + c), a * b + a * c);  // distributivity
  }
}

TYPED_TEST(FieldTest, InverseAndDivision) {
  using F = TypeParam;
  SplitMix64 rng(3);
  EXPECT_EQ(inverse(F::one()), F::one());
  for (int i = 0; i < 200; ++i) {
    const F a = this->random_nonzero(rng);
    EXPECT_EQ(a * inverse(a), F::one());
    EXPECT_EQ(inverse(inverse(a)), a);
  }
  EXPECT_THROW(inverse(F::zero()), std::invalid_argument);
}

TYPED_TEST(FieldTest, FrobeniusHasOrderM) {
  // a^(2^m) == a certifies the ring has 2^m elements acting like a field.
  using F = TypeParam;
  SplitMix64 rng(4);
  for (int i = 0; i < 50; ++i) {
    const F a = this->random_elem(rng);
    F b = a;
    for (unsigned j = 0; j < F::kBits; ++j) b = b.square();
    EXPECT_EQ(b, a);
  }
}

TYPED_TEST(FieldTest, SquareAndSqrt) {
  using F = TypeParam;
  SplitMix64 rng(5);
  for (int i = 0; i < 200; ++i) {
    const F a = this->random_elem(rng);
    EXPECT_EQ(a.square(), a * a);
    EXPECT_EQ(sqrt(a.square()), a);
    EXPECT_EQ(sqrt(a).square(), a);
    const F b = this->random_elem(rng);
    // Freshman's dream: (a+b)^2 = a^2 + b^2 in characteristic 2.
    EXPECT_EQ((a + b).square(), a.square() + b.square());
  }
}

TYPED_TEST(FieldTest, PowBasics) {
  using F = TypeParam;
  SplitMix64 rng(6);
  for (int i = 0; i < 100; ++i) {
    const F a = this->random_nonzero(rng);
    EXPECT_EQ(pow(a, 0), F::one());
    EXPECT_EQ(pow(a, 1), a);
    EXPECT_EQ(pow(a, 5), a * a * a * a * a);
    EXPECT_EQ(pow(a, 6), pow(a, 3).square());
  }
}

TYPED_TEST(FieldTest, TraceIsGF2LinearAndBalanced) {
  using F = TypeParam;
  SplitMix64 rng(7);
  int ones = 0;
  const int kSamples = 400;
  for (int i = 0; i < kSamples; ++i) {
    const F a = this->random_elem(rng);
    const F b = this->random_elem(rng);
    const F ta = trace(a);
    EXPECT_TRUE(ta == F::zero() || ta == F::one());
    EXPECT_EQ(trace(a + b), trace(a) + trace(b));
    EXPECT_EQ(trace(a.square()), trace(a));  // Tr is Frobenius-invariant
    if (ta == F::one()) ++ones;
  }
  // Exactly half the field has trace one; allow generous sampling slack.
  EXPECT_GT(ones, kSamples / 4);
  EXPECT_LT(ones, 3 * kSamples / 4);
}

TYPED_TEST(FieldTest, ArtinSchreierSolver) {
  using F = TypeParam;
  SplitMix64 rng(8);
  for (int i = 0; i < 200; ++i) {
    const F a = this->random_elem(rng);
    const F c = a.square() + a;  // guaranteed Tr(c) = 0
    F y;
    ASSERT_TRUE(solve_artin_schreier(c, &y));
    EXPECT_EQ(y.square() + y, c);
    EXPECT_TRUE(y == a || y == a + F::one());
  }
  // Unsolvable side: Tr(c) = 1 has no solution.
  for (int i = 0; i < 200; ++i) {
    const F c = this->random_elem(rng);
    if (trace(c) == F::one()) {
      F y;
      EXPECT_FALSE(solve_artin_schreier(c, &y));
    }
  }
}

TYPED_TEST(FieldTest, QuadraticSolver) {
  using F = TypeParam;
  SplitMix64 rng(9);
  for (int i = 0; i < 200; ++i) {
    const F r1 = this->random_nonzero(rng);
    F r2 = this->random_nonzero(rng);
    if (r1 == r2) continue;
    // (x + r1)(x + r2) = x^2 + (r1 + r2) x + r1 r2.
    auto roots = solve_quadratic(r1 + r2, r1 * r2);
    ASSERT_EQ(roots.size(), 2u);
    std::sort(roots.begin(), roots.end());
    std::vector<F> expect{r1, r2};
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(roots, expect);
  }
  // Double root: x^2 + c = (x + sqrt(c))^2.
  for (int i = 0; i < 50; ++i) {
    const F c = this->random_elem(rng);
    const auto roots = solve_quadratic(F::zero(), c);
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0].square(), c);
  }
}

TYPED_TEST(FieldTest, BasisElementsAreDistinctAndNonzero) {
  using F = TypeParam;
  for (unsigned i = 0; i < F::kBits; ++i) {
    EXPECT_FALSE(F::basis_element(i).is_zero());
    for (unsigned j = i + 1; j < F::kBits; ++j) {
      EXPECT_NE(F::basis_element(i), F::basis_element(j));
    }
  }
}

TEST(GF2_64Known, ReductionSpotChecks) {
  // x^63 * x = x^64 == x^4 + x^3 + x + 1 = 0x1B.
  EXPECT_EQ((GF2_64(1ULL << 63) * GF2_64(2)).value(), 0x1BULL);
  // x^63 * x^2 = x^65 == x * 0x1B.
  EXPECT_EQ((GF2_64(1ULL << 63) * GF2_64(4)).value(), 0x1BULL << 1);
}

TEST(GF2_128Known, ReductionSpotChecks) {
  // x^127 * x = x^128 == x^7 + x^2 + x + 1 = 0x87.
  const GF2_128 a(0, 1ULL << 63);
  EXPECT_EQ(a * GF2_128(2), GF2_128(0x87));
  // x^64 * x^64 = x^128 == 0x87.
  const GF2_128 b(0, 1);
  EXPECT_EQ(b * b, GF2_128(0x87));
}

}  // namespace
}  // namespace ftc::gf
