// BatchQueryEngine invariants: the sequential session, the parallel
// fan-out and one-shot single queries must return identical answers (and
// match the BFS ground truth), across all three backends, including the
// edge cases — empty batches, empty fault sets, duplicate faults and
// s == t queries.
#include <gtest/gtest.h>

#include <vector>

#include "core/batch_engine.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

SchemeConfig test_config(BackendKind backend, unsigned f) {
  SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

std::vector<BatchQueryEngine::Query> random_queries(const Graph& g, int count,
                                                    SplitMix64& rng) {
  std::vector<BatchQueryEngine::Query> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    queries.push_back(
        {static_cast<VertexId>(rng.next_below(g.num_vertices())),
         static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }
  // Sprinkle in s == t pairs: always connected, whatever the faults.
  for (int i = 0; i < count / 8; ++i) {
    const auto v = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    queries.push_back({v, v});
  }
  return queries;
}

class BatchEngine : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BatchEngine, ParallelMatchesSequentialMatchesSingle) {
  const Graph g = graph::random_connected(40, 100, 31);
  const auto scheme = make_scheme(g, test_config(GetParam(), 4));
  SplitMix64 rng(9);
  for (int round = 0; round < 4; ++round) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < rng.next_below(5); ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    BatchQueryEngine engine(*scheme, FaultSpec::edges(faults));
    const auto queries = random_queries(g, 80, rng);

    const auto sequential = engine.run_sequential(queries);
    const auto parallel = engine.run_parallel(queries, 4);
    ASSERT_EQ(sequential.size(), queries.size());
    ASSERT_EQ(parallel.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const bool expected = graph::connected_avoiding(
          g, queries[i].s, queries[i].t, faults);
      EXPECT_EQ(sequential[i], expected)
          << backend_name(GetParam()) << " round=" << round << " i=" << i;
      EXPECT_EQ(parallel[i], static_cast<bool>(sequential[i]))
          << backend_name(GetParam()) << " round=" << round << " i=" << i;
      EXPECT_EQ(engine.connected(queries[i].s, queries[i].t),
                static_cast<bool>(sequential[i]));
    }
  }
}

TEST_P(BatchEngine, EmptyBatchAndEmptyFaults) {
  const Graph g = graph::random_connected(24, 60, 37);
  const auto scheme = make_scheme(g, test_config(GetParam(), 2));

  BatchQueryEngine no_faults(*scheme, FaultSpec{});
  EXPECT_EQ(no_faults.num_faults(), 0u);
  EXPECT_TRUE(no_faults.run_sequential({}).empty());
  EXPECT_TRUE(no_faults.run_parallel({}, 4).empty());
  // The graph is connected, so every query answers true.
  std::vector<BatchQueryEngine::Query> queries{{0, 23}, {5, 5}, {17, 3}};
  for (const bool r : no_faults.run_parallel(queries, 4)) EXPECT_TRUE(r);
}

TEST_P(BatchEngine, DuplicateFaultsCollapse) {
  const Graph g = graph::barbell(6, 3);
  const auto scheme = make_scheme(g, test_config(GetParam(), 4));
  SplitMix64 rng(13);
  std::vector<EdgeId> faults{3, 3, 3, 9, 9};
  BatchQueryEngine engine(*scheme, FaultSpec::edges(faults));
  EXPECT_LE(engine.num_faults(), 2u);
  const auto queries = random_queries(g, 40, rng);
  const auto results = engine.run_parallel(queries, 4);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i], graph::connected_avoiding(g, queries[i].s,
                                                    queries[i].t, faults))
        << backend_name(GetParam()) << " i=" << i;
  }
}

TEST_P(BatchEngine, ResetFaultsReusesWorkspaces) {
  const Graph g = graph::random_connected(30, 75, 41);
  const auto scheme = make_scheme(g, test_config(GetParam(), 3));
  SplitMix64 rng(17);
  BatchQueryEngine engine(*scheme, FaultSpec{});
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::vector<EdgeId> faults;
    for (int i = 0; i < 3; ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    engine.reset_faults(FaultSpec::edges(faults));
    const auto queries = random_queries(g, 30, rng);
    const auto results = engine.run_parallel(queries, 2);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(results[i], graph::connected_avoiding(g, queries[i].s,
                                                      queries[i].t, faults))
          << backend_name(GetParam()) << " epoch=" << epoch << " i=" << i;
    }
  }
}

TEST_P(BatchEngine, ManyThreadsOnTinyBatchIsSafe) {
  const Graph g = graph::cycle(16);
  const auto scheme = make_scheme(g, test_config(GetParam(), 2));
  BatchQueryEngine engine(*scheme, FaultSpec::edges(std::vector<EdgeId>{0}));
  const std::vector<BatchQueryEngine::Query> queries{{1, 15}};
  // More threads than work: the engine must clamp, not crash.
  const auto results = engine.run_parallel(queries, 64);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0]);  // a cycle minus one edge stays connected
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BatchEngine,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           std::string name = backend_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ftc::core
