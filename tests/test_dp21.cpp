// Tests for the Dory-Parter baselines: the cycle-space scheme (whp /
// full-support variants) and the AGM-sketch scheme. Their guarantees are
// probabilistic, so sweeps assert exact agreement with ground truth on
// fixed seeds (any failure here means a fixed-seed regression, not bad
// luck: the per-query failure probability at these parameters is ~2^-60).
#include <gtest/gtest.h>

#include "dp21/agm_ftc.hpp"
#include "dp21/cycle_space_ftc.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::dp21 {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

TEST(CycleSpaceFtc, RandomSweepsMatchGroundTruth) {
  SplitMix64 rng(71);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::random_connected(40, 110, 6000 + seed);
    CycleSpaceConfig cfg;
    cfg.f = 4;
    cfg.seed = 99 + seed;
    const CycleSpaceFtc scheme = CycleSpaceFtc::build(g, cfg);
    for (int it = 0; it < 80; ++it) {
      const unsigned nf = rng.next_below(5);
      std::vector<EdgeId> faults;
      std::vector<CsEdgeLabel> labels;
      for (unsigned i = 0; i < nf; ++i) {
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        faults.push_back(e);
        labels.push_back(scheme.edge_label(e));
      }
      const VertexId s = static_cast<VertexId>(rng.next_below(40));
      const VertexId t = static_cast<VertexId>(rng.next_below(40));
      ASSERT_EQ(CycleSpaceFtc::connected(scheme.vertex_label(s),
                                         scheme.vertex_label(t), labels),
                graph::connected_avoiding(g, s, t, faults))
          << "seed=" << seed << " it=" << it;
    }
  }
}

TEST(CycleSpaceFtc, StructuredGraphs) {
  SplitMix64 rng(72);
  for (const Graph& g : {graph::cycle(20), graph::grid(4, 7),
                         graph::barbell(5, 2), graph::hypercube(4)}) {
    CycleSpaceConfig cfg;
    cfg.f = 3;
    const CycleSpaceFtc scheme = CycleSpaceFtc::build(g, cfg);
    for (int it = 0; it < 50; ++it) {
      const unsigned nf = rng.next_below(4);
      std::vector<EdgeId> faults;
      std::vector<CsEdgeLabel> labels;
      for (unsigned i = 0; i < nf; ++i) {
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        faults.push_back(e);
        labels.push_back(scheme.edge_label(e));
      }
      const VertexId s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const VertexId t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      ASSERT_EQ(CycleSpaceFtc::connected(scheme.vertex_label(s),
                                         scheme.vertex_label(t), labels),
                graph::connected_avoiding(g, s, t, faults));
    }
  }
}

TEST(CycleSpaceFtc, NonTreeOnlyFaultsKeepTreeConnectivity) {
  const Graph g = graph::cycle(10);
  CycleSpaceConfig cfg;
  cfg.f = 1;
  const CycleSpaceFtc scheme = CycleSpaceFtc::build(g, cfg);
  // Find the single non-tree edge (the BFS tree misses exactly one).
  std::vector<CsEdgeLabel> labels;
  std::vector<EdgeId> faults;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto l = scheme.edge_label(e);
    if (!l.is_tree) {
      labels.push_back(l);
      faults.push_back(e);
    }
  }
  ASSERT_EQ(labels.size(), 1u);
  for (VertexId v = 1; v < 10; ++v) {
    EXPECT_TRUE(CycleSpaceFtc::connected(scheme.vertex_label(0),
                                         scheme.vertex_label(v), labels));
  }
}

TEST(CycleSpaceFtc, LabelSizesTrackVariant) {
  const Graph g = graph::random_connected(64, 160, 5);
  CycleSpaceConfig whp;
  whp.f = 4;
  whp.full_support = false;
  CycleSpaceConfig full = whp;
  full.full_support = true;
  const CycleSpaceFtc a = CycleSpaceFtc::build(g, whp);
  const CycleSpaceFtc b = CycleSpaceFtc::build(g, full);
  // whp: O(f + log n) bits; full: O(f log n) bits.
  EXPECT_LT(a.vector_bits(), b.vector_bits());
  EXPECT_EQ(a.vertex_label_bits(), 2 * 6u);  // ceil(log2 64) = 6 per coord
  EXPECT_GT(a.edge_label_bits(), a.vector_bits());
}

TEST(AgmFtc, RandomSweepsMatchGroundTruth) {
  SplitMix64 rng(73);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = graph::random_connected(35, 90, 7000 + seed);
    AgmFtcConfig cfg;
    cfg.f = 3;
    cfg.seed = 1000 + seed;
    cfg.scale = 2.0;
    const AgmFtc scheme = AgmFtc::build(g, cfg);
    int correct = 0;
    const int total = 60;
    for (int it = 0; it < total; ++it) {
      const unsigned nf = rng.next_below(4);
      std::vector<EdgeId> faults;
      std::vector<AgmEdgeLabel> labels;
      for (unsigned i = 0; i < nf; ++i) {
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        faults.push_back(e);
        labels.push_back(scheme.edge_label(e));
      }
      const VertexId s = static_cast<VertexId>(rng.next_below(35));
      const VertexId t = static_cast<VertexId>(rng.next_below(35));
      const bool got = AgmFtc::connected(scheme.vertex_label(s),
                                         scheme.vertex_label(t), labels);
      if (got == graph::connected_avoiding(g, s, t, faults)) ++correct;
    }
    // whp semantics: allow a tiny slack, but expect near-perfect.
    EXPECT_GE(correct, total - 1) << "seed " << seed;
  }
}

TEST(AgmFtc, DisconnectionDetected) {
  const Graph g = graph::barbell(5, 1);
  AgmFtcConfig cfg;
  cfg.f = 2;
  const AgmFtc scheme = AgmFtc::build(g, cfg);
  std::vector<AgmEdgeLabel> bridge;
  std::vector<EdgeId> faults;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).u == 10 || g.edge(e).v == 10) {
      bridge.push_back(scheme.edge_label(e));
      faults.push_back(e);
    }
  }
  ASSERT_EQ(bridge.size(), 2u);
  EXPECT_FALSE(AgmFtc::connected(scheme.vertex_label(0),
                                 scheme.vertex_label(6), bridge));
  EXPECT_TRUE(AgmFtc::connected(scheme.vertex_label(0),
                                scheme.vertex_label(4), bridge));
}

TEST(AgmFtc, FullSupportUsesMoreBits) {
  const Graph g = graph::random_connected(40, 100, 9);
  AgmFtcConfig whp;
  whp.f = 4;
  AgmFtcConfig full = whp;
  full.full_support = true;
  const AgmFtc a = AgmFtc::build(g, whp);
  const AgmFtc b = AgmFtc::build(g, full);
  EXPECT_GT(b.edge_label_bits(), a.edge_label_bits());
  EXPECT_GE(b.edge_label_bits() / std::max<std::size_t>(a.edge_label_bits(), 1),
            3u);  // roughly (f+1)x
}

}  // namespace
}  // namespace ftc::dp21
