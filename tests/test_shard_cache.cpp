// ShardSource + ShardCache coverage: the transport and staging layers
// under the remote serving tier.
//
// The cache's contract: a fetch returns a local path whose bytes are
// verbatim the origin's shard (digest-verified against the manifest
// record before publish), hits never re-transfer, eviction under a byte
// budget unlinks LRU files WITHOUT invalidating live mmaps, and a
// restarted process re-adopts whatever survived on disk. The
// concurrency test (fetch/evict/query races) is also the TSan target
// for this subsystem (scripts/ci.sh tsan).
#include <gtest/gtest.h>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/connectivity_scheme.hpp"
#include "core/label_store.hpp"
#include "core/shard_cache.hpp"
#include "core/shard_source.hpp"
#include "core/sharded_store.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"
#include "util/failpoint.hpp"

namespace ftc::core {
namespace {

using graph::Graph;

SchemeConfig test_config(unsigned f) {
  SchemeConfig cfg;
  cfg.backend = BackendKind::kCoreFtc;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  return cfg;
}

// A unique scratch directory under gtest's temp dir, removed (files and
// all) on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(::testing::TempDir() + "ftc_" + name + "_" +
              std::to_string(::getpid())) {
    remove_all();
    ::mkdir(path_.c_str(), 0755);
  }
  ~ScratchDir() { remove_all(); }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  void remove_all() {
    // Scratch dirs hold only regular files (shards, manifests, cache
    // entries) — one readdir pass is enough.
    if (DIR* d = ::opendir(path_.c_str())) {
      while (const struct dirent* ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }
  std::string path_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

// Builds a real K-shard store in `dir` and returns its manifest path;
// the caller reads the records through ShardedStoreView::open.
std::string make_sharded_store(const ScratchDir& dir, unsigned k_shards,
                               unsigned seed = 13) {
  const Graph g = graph::random_connected(48, 120, seed);
  const auto scheme = make_scheme(g, test_config(3));
  const std::string manifest = dir.file("store.ftcm");
  save_sharded(*scheme, manifest, k_shards);
  return manifest;
}

// ------------------------------------------------------------------
// LocalDirShardSource: the transport contract against plain files.

TEST(LocalDirShardSource, FetchStatAndRangeRoundTrip) {
  ScratchDir dir("localsrc");
  write_file(dir.file("obj"), "0123456789abcdef");
  const LocalDirShardSource src(dir.path());

  const auto all = src.fetch("obj");
  EXPECT_EQ(std::string(all.begin(), all.end()), "0123456789abcdef");

  const auto mid = src.fetch_range("obj", 4, 6);
  EXPECT_EQ(std::string(mid.begin(), mid.end()), "456789");

  std::uint64_t size = 0;
  EXPECT_TRUE(src.stat("obj", &size));
  EXPECT_EQ(size, 16u);
  EXPECT_FALSE(src.stat("absent", &size));

  EXPECT_EQ(src.describe("obj"), dir.path() + "/obj");
}

TEST(LocalDirShardSource, MissingObjectAndBadRangeAreStructural) {
  ScratchDir dir("localsrc_err");
  write_file(dir.file("obj"), "abc");
  const LocalDirShardSource src(dir.path());
  // Not-found and past-end are structural (plain StoreError): retrying
  // cannot conjure the bytes, so they must not match the retry filter.
  EXPECT_THROW((void)src.fetch("absent"), StoreError);
  EXPECT_THROW((void)src.fetch_range("obj", 2, 5), StoreError);
  try {
    (void)src.fetch("absent");
    FAIL() << "expected StoreError";
  } catch (const StoreIoError&) {
    FAIL() << "not-found must not be the retryable subclass";
  } catch (const StoreError&) {
  }
}

// ------------------------------------------------------------------
// URL parsing.

TEST(ParseHttpUrl, AcceptsWellFormedUrls) {
  HttpEndpoint ep;
  ASSERT_TRUE(parse_http_url("http://127.0.0.1:8080/dir/sub/m.ftcm", &ep));
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 8080);
  EXPECT_EQ(ep.dir, "/dir/sub/");
  EXPECT_EQ(ep.object, "m.ftcm");

  ASSERT_TRUE(parse_http_url("http://origin/m.ftcm", &ep));
  EXPECT_EQ(ep.host, "origin");
  EXPECT_EQ(ep.port, 80);
  EXPECT_EQ(ep.dir, "/");
  EXPECT_EQ(ep.object, "m.ftcm");
}

TEST(ParseHttpUrl, RejectsMalformedUrls) {
  HttpEndpoint ep;
  EXPECT_FALSE(parse_http_url("https://host/m", &ep));      // wrong scheme
  EXPECT_FALSE(parse_http_url("http://host", &ep));         // no path
  EXPECT_FALSE(parse_http_url("http:///m", &ep));           // empty host
  EXPECT_FALSE(parse_http_url("http://host/dir/", &ep));    // empty object
  EXPECT_FALSE(parse_http_url("http://host:0/m", &ep));     // port 0
  EXPECT_FALSE(parse_http_url("http://host:70000/m", &ep)); // port range
  EXPECT_FALSE(parse_http_url("http://host:8x/m", &ep));    // port digits
  EXPECT_TRUE(is_http_url("http://host/m"));
  EXPECT_FALSE(is_http_url("/var/store/m.ftcm"));
}

// ------------------------------------------------------------------
// ShardCache: verify-then-publish, hits, eviction, rescan.

TEST(ShardCache, MissFetchesVerbatimBytesThenHits) {
  ScratchDir store_dir("cache_store");
  ScratchDir cache_dir("cache_dir");
  const std::string manifest = make_sharded_store(store_dir, 4);
  const auto view = ShardedStoreView::open(manifest);
  const LocalDirShardSource src(store_dir.path());
  ShardCache cache(cache_dir.path(), 0);

  for (const auto& rec : view->shards()) {
    const std::string local = cache.fetch_shard(src, rec);
    EXPECT_EQ(read_file(local), read_file(store_dir.path() + "/" + rec.name))
        << rec.name;
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_GT(stats.bytes_fetched, 0u);

  // Every re-fetch is a hit; no new transfer, no new entries.
  for (const auto& rec : view->shards()) {
    (void)cache.fetch_shard(src, rec);
    EXPECT_TRUE(cache.contains(rec.payload_digest, rec.file_bytes));
  }
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.bytes_resident, stats.bytes_fetched);
}

TEST(ShardCache, DigestMismatchIsTransientAndPublishesNothing) {
  ScratchDir store_dir("cache_digest");
  ScratchDir cache_dir("cache_digest_c");
  const std::string manifest = make_sharded_store(store_dir, 2);
  const auto view = ShardedStoreView::open(manifest);
  const LocalDirShardSource src(store_dir.path());
  ShardCache cache(cache_dir.path(), 0);

  {
    failpoint::Scoped fp("remote.digest", "always");
    EXPECT_THROW((void)cache.fetch_shard(src, view->shards()[0]),
                 StoreIoError);
  }
  // Nothing corrupt was published; the next (healthy) fetch is a miss
  // that succeeds.
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(
      cache.contains(view->shards()[0].payload_digest,
                     view->shards()[0].file_bytes));
  (void)cache.fetch_shard(src, view->shards()[0]);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShardCache, SizeMismatchAgainstRecordIsTransient) {
  ScratchDir store_dir("cache_size");
  ScratchDir cache_dir("cache_size_c");
  const std::string manifest = make_sharded_store(store_dir, 2);
  const auto view = ShardedStoreView::open(manifest);
  const LocalDirShardSource src(store_dir.path());
  ShardCache cache(cache_dir.path(), 0);

  store::ShardRecord lying = view->shards()[0];
  lying.file_bytes += 1;  // origin will serve one byte short of this
  EXPECT_THROW((void)cache.fetch_shard(src, lying), StoreIoError);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ShardCache, EvictsLruUnderByteBudget) {
  ScratchDir store_dir("cache_evict");
  ScratchDir cache_dir("cache_evict_c");
  const std::string manifest = make_sharded_store(store_dir, 4);
  const auto view = ShardedStoreView::open(manifest);
  const LocalDirShardSource src(store_dir.path());

  // Budget sized for roughly two shards: fetching all four must evict.
  const std::uint64_t two_shards =
      view->shards()[0].file_bytes + view->shards()[1].file_bytes;
  ShardCache cache(cache_dir.path(), two_shards);
  std::vector<std::string> paths;
  for (const auto& rec : view->shards()) {
    paths.push_back(cache.fetch_shard(src, rec));
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_resident, two_shards);
  EXPECT_GT(stats.bytes_evicted, 0u);
  // Strict LRU: the first-fetched shard died first; the most recent
  // fetch always survives (fetch_shard never evicts what it returns).
  EXPECT_FALSE(file_exists(paths.front()));
  EXPECT_TRUE(file_exists(paths.back()));
  // An evicted shard refetches as a miss and works.
  (void)cache.fetch_shard(src, view->shards()[0]);
  EXPECT_TRUE(
      cache.contains(view->shards()[0].payload_digest,
                     view->shards()[0].file_bytes));
}

TEST(ShardCache, EvictionNeverInvalidatesLiveMmaps) {
  ScratchDir store_dir("cache_pin");
  ScratchDir cache_dir("cache_pin_c");
  const std::string manifest = make_sharded_store(store_dir, 4);
  const auto view = ShardedStoreView::open(manifest);
  const LocalDirShardSource src(store_dir.path());
  ShardCache cache(cache_dir.path(), view->shards()[0].file_bytes + 16);

  // Map the cached shard, then force its eviction with later fetches.
  const std::string pinned = cache.fetch_shard(src, view->shards()[0]);
  const auto mapped = LabelStoreView::open(pinned);
  const auto before = std::vector<std::uint8_t>(
      mapped->params_blob().begin(), mapped->params_blob().end());
  for (std::size_t k = 1; k < view->shards().size(); ++k) {
    (void)cache.fetch_shard(src, view->shards()[k]);
  }
  EXPECT_FALSE(file_exists(pinned)) << "eviction should have unlinked it";
  // POSIX keeps unlinked-but-mapped bytes alive until the last mapping
  // drops: the view still serves, byte-identically.
  EXPECT_EQ(std::vector<std::uint8_t>(mapped->params_blob().begin(),
                                      mapped->params_blob().end()),
            before);
  EXPECT_GT(mapped->vertex_blob(0).size(), 0u);
}

TEST(ShardCache, StartupRescanAdoptsSurvivingFiles) {
  ScratchDir store_dir("cache_rescan");
  ScratchDir cache_dir("cache_rescan_c");
  const std::string manifest = make_sharded_store(store_dir, 3);
  const auto view = ShardedStoreView::open(manifest);
  const LocalDirShardSource src(store_dir.path());
  {
    ShardCache first(cache_dir.path(), 0);
    for (const auto& rec : view->shards()) (void)first.fetch_shard(src, rec);
    EXPECT_EQ(first.stats().entries, 3u);
  }
  // A new process over the same directory starts warm.
  ShardCache second(cache_dir.path(), 0);
  EXPECT_EQ(second.stats().entries, 3u);
  EXPECT_GT(second.stats().bytes_resident, 0u);
  for (const auto& rec : view->shards()) {
    (void)second.fetch_shard(src, rec);
  }
  EXPECT_EQ(second.stats().hits, 3u);
  EXPECT_EQ(second.stats().misses, 0u);
}

TEST(ShardCache, PutBlobIsContentAddressedAndIdempotent) {
  ScratchDir cache_dir("cache_blob");
  ShardCache cache(cache_dir.path(), 64);  // tiny budget must not evict blobs
  const std::vector<std::uint8_t> a{1, 2, 3, 4};
  const std::vector<std::uint8_t> b{5, 6, 7};
  const std::string pa = cache.put_blob("manifest", a);
  const std::string pb = cache.put_blob("manifest", b);
  EXPECT_NE(pa, pb);  // different bytes, different address
  EXPECT_EQ(cache.put_blob("manifest", a), pa);  // same bytes, same file
  EXPECT_EQ(read_file(pa), a);
  EXPECT_EQ(read_file(pb), b);
  // Blobs are not LRU-tracked: no entries, no eviction pressure.
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ShardCache, DefaultCacheSeedsFromEnvironment) {
  ScratchDir cache_dir("cache_env");
  const auto prior = set_default_remote_cache(nullptr);
  ::setenv("FTC_CACHE_DIR", cache_dir.path().c_str(), 1);
  ::setenv("FTC_CACHE_BYTES", "12345", 1);
  const auto cache = default_remote_cache();
  EXPECT_EQ(cache->dir(), cache_dir.path() + "/");
  EXPECT_EQ(cache->max_bytes(), 12345u);
  EXPECT_EQ(default_remote_cache(), cache);  // one instance per process
  ::unsetenv("FTC_CACHE_DIR");
  ::unsetenv("FTC_CACHE_BYTES");
  set_default_remote_cache(prior);
}

// ------------------------------------------------------------------
// Concurrency: fetch/evict/query races under a budget small enough to
// keep eviction continuously active. The TSan leg runs this suite.

TEST(ShardCacheConcurrency, ConcurrentFetchEvictQueryStaysConsistent) {
  ScratchDir store_dir("cache_mt");
  ScratchDir cache_dir("cache_mt_c");
  const std::string manifest = make_sharded_store(store_dir, 4);
  const auto view = ShardedStoreView::open(manifest);
  const LocalDirShardSource src(store_dir.path());
  // Room for ~2 of 4 shards: every round of fetches evicts someone.
  ShardCache cache(cache_dir.path(),
                   view->shards()[0].file_bytes * 2 + 64);

  constexpr unsigned kThreads = 8;
  constexpr unsigned kIters = 40;
  std::atomic<unsigned> failures{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (unsigned i = 0; i < kIters; ++i) {
        const auto& rec = view->shards()[(t + i) % view->shards().size()];
        try {
          const std::string path = cache.fetch_shard(src, rec);
          if (path.empty()) failures.fetch_add(1);
          (void)cache.contains(rec.payload_digest, rec.file_bytes);
          (void)cache.stats();
        } catch (const StoreError&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0u);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_resident, view->shards()[0].file_bytes * 2 + 64);
}

}  // namespace
}  // namespace ftc::core
