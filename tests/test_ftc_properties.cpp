// Property-based and metamorphic tests of the f-FTC scheme beyond direct
// ground-truth comparison: invariances the decoder must satisfy for any
// input, plus end-to-end coverage of the remaining configuration corners
// (greedy-net hierarchy = the Lemma 10 slot, provable randomized mode,
// forced GF(2^128), dense graphs).
#include <gtest/gtest.h>

#include "core/ftc_query.hpp"
#include "core/ftc_scheme.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

std::vector<EdgeLabel> labels_of(const FtcScheme& s,
                                 std::span<const EdgeId> faults) {
  std::vector<EdgeLabel> out;
  for (const EdgeId e : faults) out.push_back(s.edge_label(e));
  return out;
}

TEST(FtcProperties, GreedyHierarchyEndToEnd) {
  // SchemeKind::kDeterministicGreedy drives the poly(n) Lemma 10 slot;
  // cluster sizes are capped by the greedy net's input limit, so test on
  // small graphs only.
  SplitMix64 rng(91);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = graph::random_connected(30, 70, 8800 + seed);
    FtcConfig cfg;
    cfg.f = 3;
    cfg.kind = SchemeKind::kDeterministicGreedy;
    const FtcScheme scheme = FtcScheme::build(g, cfg);
    for (int it = 0; it < 40; ++it) {
      std::vector<EdgeId> faults;
      for (unsigned i = 0; i < rng.next_below(4); ++i) {
        faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
      }
      const VertexId s = static_cast<VertexId>(rng.next_below(30));
      const VertexId t = static_cast<VertexId>(rng.next_below(30));
      ASSERT_EQ(FtcDecoder::connected(scheme.vertex_label(s),
                                      scheme.vertex_label(t),
                                      labels_of(scheme, faults)),
                graph::connected_avoiding(g, s, t, faults));
    }
  }
}

TEST(FtcProperties, AnswersAgreeAcrossFields) {
  // The same graph labeled over GF(2^64) and GF(2^128) must answer every
  // query identically.
  const Graph g = graph::random_connected(35, 90, 63);
  FtcConfig c64;
  c64.f = 3;
  c64.field = FieldKind::kGF64;
  FtcConfig c128 = c64;
  c128.field = FieldKind::kGF128;
  const FtcScheme a = FtcScheme::build(g, c64);
  const FtcScheme b = FtcScheme::build(g, c128);
  ASSERT_EQ(a.params().field_bits, 64);
  ASSERT_EQ(b.params().field_bits, 128);
  SplitMix64 rng(92);
  for (int it = 0; it < 60; ++it) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < rng.next_below(4); ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(35));
    const VertexId t = static_cast<VertexId>(rng.next_below(35));
    EXPECT_EQ(FtcDecoder::connected(a.vertex_label(s), a.vertex_label(t),
                                    labels_of(a, faults)),
              FtcDecoder::connected(b.vertex_label(s), b.vertex_label(t),
                                    labels_of(b, faults)));
  }
}

TEST(FtcProperties, SymmetryInEndpoints) {
  const Graph g = graph::random_connected(30, 75, 64);
  FtcConfig cfg;
  cfg.f = 3;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  SplitMix64 rng(93);
  for (int it = 0; it < 60; ++it) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < 3; ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const auto fl = labels_of(scheme, faults);
    const VertexId s = static_cast<VertexId>(rng.next_below(30));
    const VertexId t = static_cast<VertexId>(rng.next_below(30));
    EXPECT_EQ(FtcDecoder::connected(scheme.vertex_label(s),
                                    scheme.vertex_label(t), fl),
              FtcDecoder::connected(scheme.vertex_label(t),
                                    scheme.vertex_label(s), fl));
  }
}

TEST(FtcProperties, DuplicatingFaultsIsIdempotent) {
  const Graph g = graph::random_connected(30, 75, 65);
  FtcConfig cfg;
  cfg.f = 3;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  SplitMix64 rng(94);
  for (int it = 0; it < 60; ++it) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < 1 + rng.next_below(3); ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    std::vector<EdgeId> doubled = faults;
    doubled.insert(doubled.end(), faults.begin(), faults.end());
    const VertexId s = static_cast<VertexId>(rng.next_below(30));
    const VertexId t = static_cast<VertexId>(rng.next_below(30));
    EXPECT_EQ(FtcDecoder::connected(scheme.vertex_label(s),
                                    scheme.vertex_label(t),
                                    labels_of(scheme, faults)),
              FtcDecoder::connected(scheme.vertex_label(s),
                                    scheme.vertex_label(t),
                                    labels_of(scheme, doubled)));
  }
}

TEST(FtcProperties, RemovingFaultsIsMonotone) {
  // Connectivity can only improve when a fault is healed.
  const Graph g = graph::random_connected(28, 64, 66);
  FtcConfig cfg;
  cfg.f = 4;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  SplitMix64 rng(95);
  for (int it = 0; it < 50; ++it) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < 4; ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(28));
    const VertexId t = static_cast<VertexId>(rng.next_below(28));
    const bool full = FtcDecoder::connected(scheme.vertex_label(s),
                                            scheme.vertex_label(t),
                                            labels_of(scheme, faults));
    for (std::size_t drop = 0; drop < faults.size(); ++drop) {
      std::vector<EdgeId> fewer;
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (i != drop) fewer.push_back(faults[i]);
      }
      const bool sub = FtcDecoder::connected(scheme.vertex_label(s),
                                             scheme.vertex_label(t),
                                             labels_of(scheme, fewer));
      if (full) EXPECT_TRUE(sub) << "healing a fault disconnected s-t";
    }
  }
}

TEST(FtcProperties, ProvableRandomizedMode) {
  const Graph g = graph::random_connected(24, 60, 67);
  FtcConfig cfg;
  cfg.f = 2;
  cfg.kind = SchemeKind::kRandomized;
  cfg.k_mode = KMode::kProvable;  // k = 5 f log n (Proposition 5)
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  EXPECT_GE(scheme.params().k, geometry::randomized_hierarchy_k(2, 24));
  SplitMix64 rng(96);
  for (int it = 0; it < 40; ++it) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < rng.next_below(3); ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(24));
    const VertexId t = static_cast<VertexId>(rng.next_below(24));
    ASSERT_EQ(FtcDecoder::connected(scheme.vertex_label(s),
                                    scheme.vertex_label(t),
                                    labels_of(scheme, faults)),
              graph::connected_avoiding(g, s, t, faults));
  }
}

TEST(FtcProperties, DenseGraphsAndLargeFaultSets) {
  // Complete graph: any f < n-1 faults leave it connected; hypercube with
  // targeted dimension cuts.
  const Graph kn = graph::complete(12);
  FtcConfig cfg;
  cfg.f = 8;
  cfg.k_scale = 2.0;
  const FtcScheme ks = FtcScheme::build(kn, cfg);
  SplitMix64 rng(97);
  for (int it = 0; it < 30; ++it) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < 8; ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(kn.num_edges())));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(12));
    const VertexId t = static_cast<VertexId>(rng.next_below(12));
    ASSERT_EQ(FtcDecoder::connected(ks.vertex_label(s), ks.vertex_label(t),
                                    labels_of(ks, faults)),
              graph::connected_avoiding(kn, s, t, faults));
  }

  const Graph hc = graph::hypercube(4);
  FtcConfig hcfg;
  hcfg.f = 4;
  const FtcScheme hs = FtcScheme::build(hc, hcfg);
  // Cut all 4 edges around vertex 0: isolates it exactly.
  std::vector<EdgeId> cut(hc.incident_edges(0).begin(),
                          hc.incident_edges(0).end());
  for (VertexId v = 1; v < hc.num_vertices(); ++v) {
    EXPECT_FALSE(FtcDecoder::connected(hs.vertex_label(0), hs.vertex_label(v),
                                       labels_of(hs, cut)));
  }
  EXPECT_TRUE(FtcDecoder::connected(hs.vertex_label(1), hs.vertex_label(15),
                                    labels_of(hs, cut)));
}

}  // namespace
}  // namespace ftc::core
