// Tests for the centralized oracle facade: edge-fault queries, the
// vertex-fault reduction of Section 1.4, batch queries, and robustness of
// the serialization layer against corrupt inputs.
#include <gtest/gtest.h>

#include "core/ftc_scheme.hpp"
#include "core/oracle.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

// Ground truth for vertex deletions: components of the graph without the
// faulty vertices' incident edges; deleted vertices isolated.
bool brute_vertex_fault_connected(const Graph& g, VertexId s, VertexId t,
                                  std::span<const VertexId> faults) {
  if (s == t) return true;
  for (const VertexId v : faults) {
    if (v == s || v == t) return false;
  }
  std::vector<EdgeId> dead;
  for (const VertexId v : faults) {
    for (const EdgeId e : g.incident_edges(v)) dead.push_back(e);
  }
  return graph::connected_avoiding(g, s, t, dead);
}

TEST(ConnectivityOracle, EdgeFaultsMatchGroundTruth) {
  const Graph g = graph::random_connected(40, 100, 17);
  FtcConfig cfg;
  cfg.f = 4;
  const ConnectivityOracle oracle(g, cfg);
  SplitMix64 rng(5);
  for (int it = 0; it < 80; ++it) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < rng.next_below(5); ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(40));
    const VertexId t = static_cast<VertexId>(rng.next_below(40));
    EXPECT_EQ(oracle.connected(s, t, FaultSpec::edges(faults)),
              graph::connected_avoiding(g, s, t, faults));
  }
  EXPECT_GT(oracle.space_bits(), 0u);
}

TEST(ConnectivityOracle, VertexFaultReduction) {
  const Graph g = graph::random_connected(30, 75, 19);
  // Capacity must cover Delta * f_v incident edges; be generous.
  FtcConfig cfg;
  cfg.f = 12;
  cfg.k_scale = 2.0;
  const ConnectivityOracle oracle(g, cfg);
  SplitMix64 rng(6);
  for (int it = 0; it < 60; ++it) {
    std::vector<VertexId> faults;
    for (unsigned i = 0; i < 1 + rng.next_below(2); ++i) {
      faults.push_back(static_cast<VertexId>(rng.next_below(30)));
    }
    const VertexId s = static_cast<VertexId>(rng.next_below(30));
    const VertexId t = static_cast<VertexId>(rng.next_below(30));
    EXPECT_EQ(oracle.connected(s, t, FaultSpec::vertices(faults)),
              brute_vertex_fault_connected(g, s, t, faults))
        << "it=" << it;
  }
}

TEST(ConnectivityOracle, VertexFaultEndpointRules) {
  const Graph g = graph::cycle(8);
  FtcConfig cfg;
  cfg.f = 4;
  const ConnectivityOracle oracle(g, cfg);
  const std::vector<VertexId> fault{3};
  EXPECT_FALSE(oracle.connected(3, 5, FaultSpec::vertices(fault)));
  EXPECT_FALSE(oracle.connected(5, 3, FaultSpec::vertices(fault)));
  EXPECT_TRUE(oracle.connected(3, 3, FaultSpec::vertices(fault)));
  // Cutting one cycle vertex leaves the rest connected.
  EXPECT_TRUE(oracle.connected(2, 4, FaultSpec::vertices(fault)));
  EXPECT_THROW(oracle.connected(0, 1, FaultSpec::vertices(
                   std::vector<VertexId>{99})),
               std::invalid_argument);
}

TEST(ConnectivityOracle, ArticulationVertexDisconnects) {
  // Two triangles sharing vertex 2: deleting it separates them.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  FtcConfig cfg;
  cfg.f = 6;
  const ConnectivityOracle oracle(g, cfg);
  const std::vector<VertexId> cut{2};
  EXPECT_FALSE(oracle.connected(0, 3, FaultSpec::vertices(cut)));
  EXPECT_TRUE(oracle.connected(0, 1, FaultSpec::vertices(cut)));
  EXPECT_TRUE(oracle.connected(3, 4, FaultSpec::vertices(cut)));
}

TEST(ConnectivityOracle, BatchMatchesSingleQueries) {
  const Graph g = graph::random_connected(32, 80, 23);
  FtcConfig cfg;
  cfg.f = 3;
  const ConnectivityOracle oracle(g, cfg);
  std::vector<EdgeId> faults{1, 17, 42};
  std::vector<ConnectivityOracle::Query> queries;
  SplitMix64 rng(7);
  for (int i = 0; i < 25; ++i) {
    queries.push_back({static_cast<VertexId>(rng.next_below(32)),
                       static_cast<VertexId>(rng.next_below(32))});
  }
  const auto results = oracle.batch_connected(queries, FaultSpec::edges(faults));
  ASSERT_EQ(results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i], oracle.connected(queries[i].s, queries[i].t,
                                           FaultSpec::edges(faults)));
  }
}

TEST(Serialization, TruncatedInputsThrow) {
  const Graph g = graph::random_connected(20, 50, 29);
  FtcConfig cfg;
  cfg.f = 2;
  const FtcScheme scheme = FtcScheme::build(g, cfg);
  const auto vbytes = serialize(scheme.vertex_label(3));
  const auto ebytes = serialize(scheme.edge_label(5));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                vbytes.size() / 2}) {
    std::vector<std::uint8_t> trunc(vbytes.begin(), vbytes.begin() + cut);
    EXPECT_THROW(deserialize_vertex_label(trunc), std::invalid_argument);
  }
  for (const std::size_t cut : {std::size_t{4}, ebytes.size() / 2,
                                ebytes.size() - 1}) {
    std::vector<std::uint8_t> trunc(ebytes.begin(), ebytes.begin() + cut);
    EXPECT_THROW(deserialize_edge_label(trunc), std::invalid_argument);
  }
  // Corrupt field width in the header is rejected.
  auto bad = vbytes;
  bad[0] = 77;
  EXPECT_THROW(deserialize_vertex_label(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ftc::core
