// Randomized differential stress net: every generator family in
// graph/generators.hpp x random fault sets x all three backends, checked
// query-by-query against the BFS ground truth (connected_avoiding).
//
// Everything is seeded and the failing instance is printed as a
// (family, n, seed) triple plus the exact fault set and endpoints, so
// any mismatch reported by CI is replayable by pasting the triple into
// make_instance below. The sweep sizes are chosen to keep the suite
// fast enough for the asan preset while still covering qualitatively
// different fragment structures (expanders, large diameter, bridges,
// clique chains, heavy-tailed degrees, product graphs).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/label_store.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

struct Instance {
  std::string family;
  unsigned n = 0;          // family-specific size knob
  std::uint64_t seed = 0;  // generator seed (0 for deterministic families)
  Graph g;
};

// The replayable instance constructor: (family, n, seed) -> graph.
// gnp is the one family that may come out disconnected; those instances
// are skipped (the schemes require connected inputs) and nulled here.
std::optional<Instance> make_instance(const std::string& family, unsigned n,
                                      std::uint64_t seed) {
  Instance inst;
  inst.family = family;
  inst.n = n;
  inst.seed = seed;
  if (family == "gnp") {
    // Above the connectivity threshold most seeds come out connected.
    const double p = 3.5 * std::log(static_cast<double>(n)) /
                     static_cast<double>(n);
    inst.g = graph::gnp(n, p, seed);
    if (!graph::is_connected(inst.g)) return std::nullopt;
  } else if (family == "grid") {
    inst.g = graph::grid(n, n + 1);
  } else if (family == "barbell") {
    inst.g = graph::barbell(n, 3);
  } else if (family == "path_of_cliques") {
    inst.g = graph::path_of_cliques(n, 4);
  } else if (family == "preferential_attachment") {
    inst.g = graph::preferential_attachment(n, 3, seed);
  } else if (family == "hypercube") {
    inst.g = graph::hypercube(n);
  } else {
    ADD_FAILURE() << "unknown family " << family;
    return std::nullopt;
  }
  return inst;
}

std::string fault_list(const std::vector<EdgeId>& faults) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i != 0) os << ",";
    os << faults[i];
  }
  os << "}";
  return os.str();
}

SchemeConfig stress_config(BackendKind backend, unsigned f) {
  SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

class StressDifferential : public ::testing::TestWithParam<BackendKind> {};

TEST_P(StressDifferential, AllFamiliesAgreeWithBfsGroundTruth) {
  const unsigned f = 4;
  struct Sweep {
    const char* family;
    std::vector<unsigned> sizes;  // family-specific knob, see make_instance
    std::vector<std::uint64_t> seeds;
  };
  const Sweep sweeps[] = {
      {"gnp", {24, 40}, {1, 2, 3}},
      {"grid", {5, 7}, {0}},
      {"barbell", {8, 12}, {0}},
      {"path_of_cliques", {4, 7}, {0}},
      {"preferential_attachment", {30, 48}, {1, 2}},
      {"hypercube", {4, 5}, {0}},
  };

  unsigned instances_built = 0;
  for (const Sweep& sweep : sweeps) {
    for (const unsigned n : sweep.sizes) {
      for (const std::uint64_t seed : sweep.seeds) {
        const auto inst = make_instance(sweep.family, n, seed);
        if (!inst.has_value()) continue;  // disconnected gnp draw
        const Graph& g = inst->g;
        const auto scheme = make_scheme(g, stress_config(GetParam(), f));
        ++instances_built;

        SplitMix64 rng(mix_hash(n * 1000 + seed, 0xabcdef));
        for (int it = 0; it < 30; ++it) {
          std::vector<EdgeId> faults;
          for (unsigned i = 0; i < rng.next_below(f + 1); ++i) {
            faults.push_back(
                static_cast<EdgeId>(rng.next_below(g.num_edges())));
          }
          const auto s =
              static_cast<VertexId>(rng.next_below(g.num_vertices()));
          const auto t =
              static_cast<VertexId>(rng.next_below(g.num_vertices()));
          const bool expected = graph::connected_avoiding(g, s, t, faults);
          EXPECT_EQ(scheme->connected(s, t, FaultSpec::edges(faults)), expected)
              << "REPLAY (family=" << inst->family << ", n=" << inst->n
              << ", seed=" << inst->seed << ") backend="
              << backend_name(GetParam()) << " faults=" << fault_list(faults)
              << " s=" << s << " t=" << t;
        }
      }
    }
  }
  // The sweep must not silently degenerate: 12 deterministic instances
  // plus at least a couple of connected gnp draws.
  EXPECT_GE(instances_built, 14u);
}

// Same differential, but through prepared fault-set sessions with both
// ablation switches — the serving path the batch engine exercises.
TEST_P(StressDifferential, SessionsAgreeWithOneShotAcrossAblations) {
  const unsigned f = 3;
  for (const char* family : {"grid", "path_of_cliques", "hypercube"}) {
    const auto inst = make_instance(family, family[0] == 'g' ? 5 : 4, 0);
    ASSERT_TRUE(inst.has_value());
    const Graph& g = inst->g;
    const auto scheme = make_scheme(g, stress_config(GetParam(), f));

    SplitMix64 rng(1234);
    for (int round = 0; round < 6; ++round) {
      std::vector<EdgeId> faults;
      for (unsigned i = 0; i < 1 + rng.next_below(f); ++i) {
        faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
      }
      const auto fault_set = scheme->prepare_faults(FaultSpec::edges(faults));
      const auto workspace = scheme->make_workspace();
      for (int it = 0; it < 15; ++it) {
        const auto s =
            static_cast<VertexId>(rng.next_below(g.num_vertices()));
        const auto t =
            static_cast<VertexId>(rng.next_below(g.num_vertices()));
        const bool expected = graph::connected_avoiding(g, s, t, faults);
        for (const bool adaptive : {false, true}) {
          QueryOptions options;
          options.adaptive = adaptive;
          options.smallest_cut_first = !adaptive;
          EXPECT_EQ(scheme->query(s, t, *fault_set, *workspace, options),
                    expected)
              << "REPLAY (family=" << family << ") backend="
              << backend_name(GetParam()) << " faults=" << fault_list(faults)
              << " s=" << s << " t=" << t << " adaptive=" << adaptive;
        }
      }
    }
  }
}

// The FaultSpec fault model, differentially: vertex-only and mixed
// edge+vertex fault sweeps vs the BFS ground truth, across all three
// backends, through every serving path — one-shot connected(spec),
// prepared sessions, BatchQueryEngine, and schemes served from a
// format-v2 label store in both load modes.
TEST_P(StressDifferential, VertexAndMixedFaultsAgreeWithBfsGroundTruth) {
  // Capacity headroom: <= 2 vertex faults * max degree + 2 edge faults.
  const unsigned f = 14;
  struct Sweep {
    const char* family;
    unsigned n;
    std::uint64_t seed;
  };
  const Sweep sweeps[] = {
      {"grid", 4, 0},
      {"path_of_cliques", 4, 0},
      {"hypercube", 4, 0},
      {"preferential_attachment", 24, 2},
  };
  for (const Sweep& sweep : sweeps) {
    const auto inst = make_instance(sweep.family, sweep.n, sweep.seed);
    ASSERT_TRUE(inst.has_value());
    const Graph& g = inst->g;
    const auto scheme = make_scheme(g, stress_config(GetParam(), f));

    // Store round-trip: the saved container (format v2, with adjacency)
    // must answer vertex faults exactly like the in-memory scheme.
    const std::string store_path =
        ::testing::TempDir() + "ftc_vfstress_" + sweep.family + "_" +
        std::to_string(static_cast<int>(GetParam())) + "_" +
        std::to_string(::getpid()) + ".ftcs";
    scheme->save(store_path);
    const auto mmap_scheme =
        load_scheme(store_path, {LoadMode::kMmap, true});
    const auto mat_scheme =
        load_scheme(store_path, {LoadMode::kMaterialize, true});

    SplitMix64 rng(mix_hash(sweep.n * 77 + sweep.seed, 0x5eed));
    for (int it = 0; it < 25; ++it) {
      std::vector<graph::VertexId> vertex_faults;
      for (unsigned i = 0; i < 1 + rng.next_below(2); ++i) {
        vertex_faults.push_back(
            static_cast<VertexId>(rng.next_below(g.num_vertices())));
      }
      std::vector<EdgeId> edge_faults;
      if (it % 2 == 0) {  // alternate vertex-only and mixed sweeps
        for (unsigned i = 0; i < rng.next_below(3); ++i) {
          edge_faults.push_back(
              static_cast<EdgeId>(rng.next_below(g.num_edges())));
        }
      }
      const auto spec = FaultSpec::of(edge_faults, vertex_faults);
      const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const bool expected =
          graph::connected_avoiding(g, s, t, edge_faults, vertex_faults);
      const auto replay = [&](const char* path) {
        std::ostringstream os;
        os << "REPLAY (family=" << sweep.family << ", n=" << sweep.n
           << ", seed=" << sweep.seed << ") backend="
           << backend_name(GetParam()) << " path=" << path
           << " edge_faults=" << fault_list(edge_faults)
           << " vertex_faults="
           << fault_list(std::vector<EdgeId>(vertex_faults.begin(),
                                             vertex_faults.end()))
           << " s=" << s << " t=" << t;
        return os.str();
      };
      EXPECT_EQ(scheme->connected(s, t, spec), expected)
          << replay("in-memory");
      EXPECT_EQ(mmap_scheme->connected(s, t, spec), expected)
          << replay("store-mmap");
      EXPECT_EQ(mat_scheme->connected(s, t, spec), expected)
          << replay("store-materialize");
    }

    // The same specs through batch sessions (in-memory and store-owned).
    SplitMix64 rng2(4242);
    std::vector<graph::VertexId> vf{
        static_cast<VertexId>(rng2.next_below(g.num_vertices()))};
    std::vector<EdgeId> ef{
        static_cast<EdgeId>(rng2.next_below(g.num_edges()))};
    const auto spec = FaultSpec::of(ef, vf);
    BatchQueryEngine in_memory(*scheme, spec);
    BatchQueryEngine from_store(
        load_scheme(store_path, {LoadMode::kMmap, true}), spec);
    std::vector<BatchQueryEngine::Query> queries;
    for (int i = 0; i < 200; ++i) {
      queries.push_back(
          {static_cast<VertexId>(rng2.next_below(g.num_vertices())),
           static_cast<VertexId>(rng2.next_below(g.num_vertices()))});
    }
    const auto expected_bits = in_memory.run_sequential(queries);
    EXPECT_EQ(from_store.run_parallel(queries, 4), expected_bits)
        << sweep.family;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(static_cast<bool>(expected_bits[i]),
                graph::connected_avoiding(g, queries[i].s, queries[i].t, ef,
                                          vf))
          << sweep.family << " i=" << i;
    }
    std::remove(store_path.c_str());
  }
}

// Parallel-build sweep: seeded generator families built at a RANDOM
// thread count (drawn per instance from the replayable rng), checked
// two ways against the serial build of the same instance — the saved
// store bytes must be identical, and answers must match the serial
// scheme AND the BFS ground truth. This is the randomized counterpart
// of test_parallel_build's fixed {1,2,8,hw} sweep: over CI runs it
// walks odd thread counts (3, 5, 7, ...) that fixed grids never try.
TEST_P(StressDifferential, ParallelBuildsMatchSerialAcrossFamilies) {
  const unsigned f = 4;
  struct Sweep {
    const char* family;
    unsigned n;
    std::uint64_t seed;
  };
  const Sweep sweeps[] = {
      {"gnp", 40, 2},
      {"grid", 6, 0},
      {"path_of_cliques", 6, 0},
      {"preferential_attachment", 40, 1},
      {"hypercube", 5, 0},
  };
  for (const Sweep& sweep : sweeps) {
    const auto inst = make_instance(sweep.family, sweep.n, sweep.seed);
    if (!inst.has_value()) continue;  // disconnected gnp draw
    const Graph& g = inst->g;
    SplitMix64 rng(mix_hash(sweep.n * 31 + sweep.seed, 0x7a11e1));
    // 2..9 workers; the draw is part of the replay triple via the rng.
    const unsigned threads = 2 + static_cast<unsigned>(rng.next_below(8));

    SchemeConfig cfg = stress_config(GetParam(), f);
    cfg.set_build_threads(1);
    const auto serial = make_scheme(g, cfg);
    cfg.set_build_threads(threads);
    const auto parallel = make_scheme(g, cfg);

    // Store-byte equality: the strongest statement — every label, every
    // parameter, every checksum identical.
    const auto serial_bytes = store::build_container_bytes(
        *serial, 0, g.num_vertices(), 0, g.num_edges(), true);
    const auto parallel_bytes = store::build_container_bytes(
        *parallel, 0, g.num_vertices(), 0, g.num_edges(), true);
    EXPECT_EQ(parallel_bytes, serial_bytes)
        << "REPLAY (family=" << sweep.family << ", n=" << sweep.n
        << ", seed=" << sweep.seed << ") backend=" << backend_name(GetParam())
        << " threads=" << threads;

    for (int it = 0; it < 20; ++it) {
      std::vector<EdgeId> faults;
      for (unsigned i = 0; i < rng.next_below(f + 1); ++i) {
        faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
      }
      const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const bool expected = graph::connected_avoiding(g, s, t, faults);
      const bool serial_got = serial->connected(s, t, FaultSpec::edges(faults));
      const bool parallel_got =
          parallel->connected(s, t, FaultSpec::edges(faults));
      EXPECT_EQ(serial_got, expected)
          << "REPLAY (family=" << sweep.family << ", n=" << sweep.n
          << ", seed=" << sweep.seed << ") backend="
          << backend_name(GetParam()) << " faults=" << fault_list(faults)
          << " s=" << s << " t=" << t << " path=serial";
      EXPECT_EQ(parallel_got, expected)
          << "REPLAY (family=" << sweep.family << ", n=" << sweep.n
          << ", seed=" << sweep.seed << ") backend="
          << backend_name(GetParam()) << " threads=" << threads
          << " faults=" << fault_list(faults) << " s=" << s << " t=" << t
          << " path=parallel";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StressDifferential,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           std::string name = backend_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ftc::core
