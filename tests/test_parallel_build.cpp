// Build-reproducibility suite for the parallel construction pipeline.
//
// The determinism contract under test: a T-thread build produces
// BYTE-IDENTICAL label stores to the serial build, for every T, every
// backend, and both persistence layouts (flat container and sharded
// manifest). The contract is what makes `build --threads N` safe to
// deploy — artifact digests, delta-push reuse and store-level cmp-based
// verification all assume the thread knob is a pure wall-clock knob.
//
// Also covered here: answer parity of parallel-built schemes against
// the BFS ground truth, BuildStats wall-clock sanity under the parallel
// builder, and unit tests for the two determinism-critical primitives
// (util::parallel_sort's byte-identity with std::sort, WorkerPool's
// exception propagation). The suite runs under the asan AND tsan
// presets; tsan is what proves the builder dispatches are race-free.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/connectivity_scheme.hpp"
#include "core/ftc_scheme.hpp"
#include "core/label_store.hpp"
#include "core/sharded_store.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"
#include "util/worker_pool.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

SchemeConfig test_config(BackendKind backend, unsigned f) {
  SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

// The thread counts every byte-identity sweep runs: serial baseline,
// the smallest parallel case, a typical core count, and whatever this
// host actually has (so CI on any machine covers its own concurrency).
std::vector<unsigned> sweep_threads() {
  std::vector<unsigned> threads{1, 2, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 &&
      std::find(threads.begin(), threads.end(), hw) == threads.end()) {
    threads.push_back(hw);
  }
  return threads;
}

class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_pbuild_" + name + "_" +
              std::to_string(::getpid()) + ".ftcs") {
    std::remove(path_.c_str());
  }
  ~StoreFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class ManifestFile {
 public:
  explicit ManifestFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_pbuild_manifest_" + name + "_" +
              std::to_string(::getpid()) + ".ftcm") {
    cleanup();
  }
  ~ManifestFile() { cleanup(); }
  const std::string& path() const { return path_; }
  std::string shard_path(unsigned k) const {
    return path_ + ".shard" + std::to_string(k) + ".ftcs";
  }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    for (unsigned k = 0; k < 16; ++k) std::remove(shard_path(k).c_str());
  }
  std::string path_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

class ParallelBuild : public ::testing::TestWithParam<BackendKind> {};

// The tentpole guarantee, flat layout: every thread count yields the
// exact bytes of the serial build, through the streaming save path.
TEST_P(ParallelBuild, FlatStoreBytesIdenticalAcrossThreadCounts) {
  const Graph g = graph::random_connected(150, 480, 19);
  SchemeConfig cfg = test_config(GetParam(), 4);

  cfg.set_build_threads(1);
  StoreFile serial_file("flat_serial_" +
                        std::to_string(static_cast<int>(GetParam())));
  make_scheme(g, cfg)->save(serial_file.path());
  const auto serial_bytes = read_file(serial_file.path());
  ASSERT_FALSE(serial_bytes.empty());

  for (const unsigned threads : sweep_threads()) {
    cfg.set_build_threads(threads);
    StoreFile file("flat_t" + std::to_string(threads) + "_" +
                   std::to_string(static_cast<int>(GetParam())));
    make_scheme(g, cfg)->save(file.path());
    EXPECT_EQ(read_file(file.path()), serial_bytes)
        << backend_name(GetParam()) << " threads=" << threads;
  }
}

// Same guarantee, sharded layout: manifest and every shard container
// must match the serial build byte-for-byte (this is what delta pushes
// and the digest-based reuse machinery key on).
TEST_P(ParallelBuild, ShardedStoreBytesIdenticalAcrossThreadCounts) {
  const unsigned kShards = 4;
  const Graph g = graph::random_connected(96, 300, 23);
  SchemeConfig cfg = test_config(GetParam(), 3);

  // Shard records embed file names derived from the manifest path, so
  // every thread count saves to the SAME path (a fresh generation each
  // time) and the bytes are snapshotted between saves.
  ManifestFile manifest(std::to_string(static_cast<int>(GetParam())));

  cfg.set_build_threads(1);
  save_sharded(*make_scheme(g, cfg), manifest.path(), kShards);
  const auto serial_manifest_bytes = read_file(manifest.path());
  std::vector<std::vector<std::uint8_t>> serial_shards;
  for (unsigned k = 0; k < kShards; ++k) {
    serial_shards.push_back(read_file(manifest.shard_path(k)));
    ASSERT_FALSE(serial_shards.back().empty());
  }

  for (const unsigned threads : sweep_threads()) {
    cfg.set_build_threads(threads);
    save_sharded(*make_scheme(g, cfg), manifest.path(), kShards);
    EXPECT_EQ(read_file(manifest.path()), serial_manifest_bytes)
        << backend_name(GetParam()) << " threads=" << threads;
    for (unsigned k = 0; k < kShards; ++k) {
      EXPECT_EQ(read_file(manifest.shard_path(k)), serial_shards[k])
          << backend_name(GetParam()) << " threads=" << threads
          << " shard=" << k;
    }
  }
}

// Byte-identity says parallel == serial; this says the thing they both
// equal is CORRECT: a parallel-built scheme answers random fault sweeps
// exactly like the BFS ground truth.
TEST_P(ParallelBuild, ParallelBuiltSchemeAgreesWithBfsGroundTruth) {
  const unsigned f = 4;
  const Graph g = graph::random_connected(80, 240, 31);
  SchemeConfig cfg = test_config(GetParam(), f);
  cfg.set_build_threads(8);
  const auto scheme = make_scheme(g, cfg);

  SplitMix64 rng(0x9a7a11e1);
  for (int it = 0; it < 60; ++it) {
    std::vector<EdgeId> faults;
    for (unsigned i = 0; i < rng.next_below(f + 1); ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    EXPECT_EQ(scheme->connected(s, t, FaultSpec::edges(faults)),
              graph::connected_avoiding(g, s, t, faults))
        << backend_name(GetParam()) << " it=" << it << " s=" << s
        << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ParallelBuild,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           std::string name = backend_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// BuildStats under the parallel builder: the resolved worker count is
// reported, and the phase timings are wall-clock on the coordinating
// thread — so hierarchy + sketch can never exceed total (they are
// disjoint sub-intervals of it), which would NOT hold if the fields
// summed per-worker CPU time.
TEST(ParallelBuildStats, WallClockTimingsAndThreadCount) {
  const Graph g = graph::random_connected(120, 400, 7);
  FtcConfig cfg;
  cfg.f = 4;
  cfg.k_scale = 2.0;

  cfg.build_threads = 8;
  const auto scheme = FtcScheme::build(g, cfg);
  const BuildStats& stats = scheme.build_stats();
  EXPECT_EQ(stats.threads, 8u);
  EXPECT_GE(stats.hierarchy_seconds, 0.0);
  EXPECT_GE(stats.sketch_seconds, 0.0);
  EXPECT_GE(stats.total_seconds, 0.0);
  EXPECT_LE(stats.hierarchy_seconds + stats.sketch_seconds,
            stats.total_seconds);

  // threads = 0 resolves to the host's hardware concurrency.
  cfg.build_threads = 0;
  const auto auto_scheme = FtcScheme::build(g, cfg);
  EXPECT_EQ(auto_scheme.build_stats().threads,
            util::WorkerPool::resolve_threads(0));
}

// util::parallel_sort must be byte-identical to std::sort whenever ties
// only occur between bit-identical elements — heavy duplicate load,
// sizes straddling the parallel threshold, and several pool widths.
TEST(ParallelSort, MatchesStdSortWithDuplicates) {
  for (const unsigned pool_threads : {1u, 2u, 3u, 8u}) {
    util::WorkerPool pool(pool_threads);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{257},
          std::size_t{4096}, std::size_t{50000}}) {
      SplitMix64 rng(n * 31 + pool_threads);
      std::vector<std::uint64_t> v(n);
      for (auto& x : v) x = rng.next_below(97);  // dense duplicates
      std::vector<std::uint64_t> expected = v;
      std::sort(expected.begin(), expected.end());
      util::parallel_sort(v, std::less<std::uint64_t>{}, &pool);
      EXPECT_EQ(v, expected) << "n=" << n << " threads=" << pool_threads;
    }
  }
}

// Comparator equivalence classes wider than one value: elements compare
// by key only, so the "ties are bit-identical" precondition is met by
// giving every equal key the same payload. The merged order must still
// match std::sort exactly.
TEST(ParallelSort, MatchesStdSortUnderKeyOnlyComparator) {
  struct Rec {
    std::uint32_t key;
    std::uint32_t payload;
    bool operator==(const Rec& o) const {
      return key == o.key && payload == o.payload;
    }
  };
  const auto by_key = [](const Rec& a, const Rec& b) { return a.key < b.key; };
  util::WorkerPool pool(4);
  SplitMix64 rng(0xfeed);
  std::vector<Rec> v(30000);
  for (auto& r : v) {
    r.key = static_cast<std::uint32_t>(rng.next_below(64));
    r.payload = r.key * 2654435761u;  // equal keys => identical records
  }
  std::vector<Rec> expected = v;
  std::sort(expected.begin(), expected.end(), by_key);
  util::parallel_sort(v, by_key, &pool);
  EXPECT_TRUE(v == expected);
}

// Builder invariant checks (FTC_CHECK and friends) must keep their
// fail-fast semantics when they fire on a pool thread: the first task
// exception is rethrown from run() on the dispatching thread, and the
// pool survives to serve later dispatches.
TEST(WorkerPool, PropagatesTaskExceptionsAndSurvives) {
  util::WorkerPool pool(4);
  EXPECT_THROW(
      pool.run(4,
               [](unsigned id) {
                 if (id == 2) throw std::runtime_error("boom");
               }),
      std::runtime_error);

  // The pool is intact: a clean dispatch still runs every id.
  std::vector<int> hits(4, 0);
  pool.run(4, [&](unsigned id) { hits[id] = 1; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1, 1}));

  // Exceptions on the calling thread (id 0) propagate too.
  EXPECT_THROW(pool.run(2,
                        [](unsigned id) {
                          if (id == 0) throw std::runtime_error("caller");
                        }),
               std::runtime_error);
}

}  // namespace
}  // namespace ftc::core
